//! Throughput of the concurrent what-if runner — and its determinism gates.
//!
//! The paper's pitch is *predictive*: evaluate many candidate worlds, pick
//! the best schedule before paying for it. This bench drives
//! [`WhatIfRunner`] through `SCENARIOS` perturbed scenarios (scaled link
//! capacities, degraded uplinks/links/sites, capacity windows, alternate
//! roots, dropped relay candidates) of a 100-cluster Table-2 grid — every
//! scenario a full predict-all-heuristics → pick-best → execute-node-level
//! loop over the unified discrete-event core — once on a single worker and
//! once on `max(available cores, 2)` workers (never a "parallel" leg with
//! one thread, even on a single-core machine).
//!
//! It is also the **check mode** CI runs:
//!
//! * the single-thread and parallel sweeps must be bit-identical report for
//!   report (the `schedule_all_sharded` aggregation contract, extended to
//!   whole scenario sweeps), and every winning schedule must simulate to a
//!   finite completion;
//! * the **warm-start gate**: a warm sweep (baseline commit logs replayed
//!   under each scenario's delta) must be bit-identical to the cold sweep —
//!   asserted on every run, for the full mix and for the single-link batch;
//! * the warm-start **speedup floor**: with `WHATIF_WARM_SPEEDUP_GATE` set
//!   in the environment, the per-scenario speedup of the warm runner over
//!   the cold runner on the single-link batch must clear
//!   `WHATIF_WARM_SPEEDUP_FLOOR` (default 3×).
//!
//! Throughput, the warm speedup and the replay telemetry (replayed /
//! repaired / recomputed commits) land in `BENCH_whatif.json` at the
//! workspace root (written atomically), alongside the winner distribution —
//! the quickest sanity check that the perturbations actually move the
//! decision.

use gridcast_bench::random_grid;
use gridcast_core::HeuristicKind;
use gridcast_plogp::{MessageSize, Time};
use gridcast_simulator::{Perturbation, Scenario, WarmStartTelemetry, WhatIfReport, WhatIfRunner};
use gridcast_topology::ClusterId;
use std::fmt::Write as _;
use std::time::Instant;

/// Cluster count of the benched grid (the scale the acceptance gate names).
const CLUSTERS: usize = 100;

/// Number of perturbed scenarios per sweep.
const SCENARIOS: usize = 1000;

/// Number of single-link perturbations in the warm-start speedup batch. The
/// batch is homogeneous (every scenario one `DegradeLink`), so the mean
/// per-scenario speedup the timer yields coincides with the median up to
/// scheduler noise.
const WARM_SCENARIOS: usize = 400;

/// The deterministic scenario mix: baseline, grid-wide scaling, degraded
/// uplinks, alternate roots, dropped relays, single degraded links,
/// correlated site degradations and time-varying capacity windows in equal
/// parts, parameters varied by index.
fn scenario_mix(clusters: usize, count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|i| match i % 8 {
            0 => Scenario::baseline(),
            1 => Scenario::one(Perturbation::ScaleAllLinks {
                factor: 0.5 + 0.125 * (i % 16) as f64,
            }),
            2 => Scenario::one(Perturbation::DegradeUplink {
                cluster: ClusterId(i % clusters),
                factor: 2.0 + (i % 7) as f64,
            }),
            3 => Scenario::one(Perturbation::AlternateRoot {
                root: ClusterId(i % clusters),
            }),
            4 => Scenario::one(Perturbation::DropRelay {
                cluster: ClusterId(1 + i % (clusters - 1)),
            }),
            5 => Scenario::one(Perturbation::DegradeLink {
                from: ClusterId(i % clusters),
                to: ClusterId((i % clusters + 1) % clusters),
                factor: 2.0 + (i % 5) as f64,
            }),
            6 => Scenario::one(Perturbation::DegradeSite {
                first: ClusterId(i % clusters),
                span: 1 + i % 4,
                factor: 2.5,
            }),
            _ => Scenario::one(Perturbation::TimeVaryingCapacity {
                from: ClusterId(i % clusters),
                to: ClusterId((i % clusters + 2) % clusters),
                factor: 4.0,
                from_time: Time::ZERO,
                until: Time::from_millis(500.0),
            }),
        })
        .collect()
}

/// The acceptance gate's batch: one perturbed link per scenario.
fn single_link_batch(clusters: usize, count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|i| {
            let from = i % clusters;
            Scenario::one(Perturbation::DegradeLink {
                from: ClusterId(from),
                to: ClusterId((from + 1 + i / clusters) % clusters),
                factor: 1.25 + 0.25 * (i % 12) as f64,
            })
        })
        .collect()
}

fn assert_bit_identical(label: &str, a: &[WhatIfReport], b: &[WhatIfReport]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.scenario, y.scenario);
        assert_eq!(
            x.best, y.best,
            "{label}: winner diverges at scenario {}",
            x.scenario
        );
        assert_eq!(x.events, y.events);
        let bits: fn(Time) -> u64 = |t| t.as_secs().to_bits();
        assert!(
            x.makespans
                .iter()
                .zip(&y.makespans)
                .all(|(p, q)| bits(*p) == bits(*q)),
            "{label}: predicted makespans diverge at scenario {}",
            x.scenario
        );
        assert_eq!(
            bits(x.predicted),
            bits(y.predicted),
            "{label}: prediction diverges at scenario {}",
            x.scenario
        );
        assert_eq!(
            bits(x.simulated),
            bits(y.simulated),
            "{label}: simulation diverges at scenario {}",
            x.scenario
        );
        assert_eq!(x.retries, y.retries);
        assert_eq!(x.undelivered, y.undelivered);
    }
}

fn main() {
    let grid = random_grid(CLUSTERS, 0);
    let scenarios = scenario_mix(CLUSTERS, SCENARIOS);
    let message = MessageSize::from_mib(1);
    let runner = WhatIfRunner::new(&grid, message, ClusterId(0));
    // Never a one-worker "parallel" leg: on a single-core machine the sweep
    // still runs with two workers and the report records that honestly.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let start = Instant::now();
    let sequential = runner.clone().with_threads(1).run(&scenarios);
    let single_elapsed = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = runner.clone().with_threads(threads).run(&scenarios);
    let parallel_elapsed = start.elapsed().as_secs_f64();

    // Check mode: bit-identical across worker-thread counts, every winner
    // executable.
    assert_bit_identical("threads", &sequential, &parallel);
    for report in &parallel {
        assert!(
            report.simulated.is_finite(),
            "scenario {} simulated to an infinite completion",
            report.scenario
        );
    }

    // Warm-start gate, part one: the warm sweep of the full mix (replay
    // where eligible, cold fallback elsewhere) is bit-identical to cold.
    let start = Instant::now();
    let (warm_mix, mix_telemetry) = runner
        .clone()
        .with_warm_start(true)
        .with_threads(1)
        .run_with_telemetry(&scenarios);
    let warm_mix_elapsed = start.elapsed().as_secs_f64();
    assert_bit_identical("warm mix", &sequential, &warm_mix);

    // Warm-start gate, part two: the single-link batch the acceptance
    // criterion names, timed cold then warm on one worker each.
    let single_link = single_link_batch(CLUSTERS, WARM_SCENARIOS);
    let start = Instant::now();
    let cold_links = runner.clone().with_threads(1).run(&single_link);
    let cold_links_elapsed = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (warm_links, link_telemetry) = runner
        .clone()
        .with_warm_start(true)
        .with_threads(1)
        .run_with_telemetry(&single_link);
    let warm_links_elapsed = start.elapsed().as_secs_f64();
    assert_bit_identical("warm single-link", &cold_links, &warm_links);
    let warm_speedup = cold_links_elapsed / warm_links_elapsed;

    if std::env::var_os("WHATIF_WARM_SPEEDUP_GATE").is_some() {
        let floor: f64 = std::env::var("WHATIF_WARM_SPEEDUP_FLOOR")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3.0);
        assert!(
            warm_speedup >= floor,
            "warm-start speedup {warm_speedup:.2}x on single-link perturbations \
             is below the {floor:.1}x floor"
        );
    }

    let single_rate = SCENARIOS as f64 / single_elapsed;
    let parallel_rate = SCENARIOS as f64 / parallel_elapsed;
    let warm_mix_rate = SCENARIOS as f64 / warm_mix_elapsed;
    println!(
        "whatif: {SCENARIOS} scenarios on {CLUSTERS} clusters -> \
         {single_rate:.1}/s on 1 thread, {parallel_rate:.1}/s on {threads} threads, \
         {warm_mix_rate:.1}/s warm (bit-identical); \
         warm single-link speedup {warm_speedup:.2}x over {WARM_SCENARIOS} scenarios"
    );

    let mut winners: Vec<(&'static str, usize)> =
        HeuristicKind::all().iter().map(|k| (k.name(), 0)).collect();
    for report in &parallel {
        let slot = winners
            .iter_mut()
            .find(|(name, _)| *name == report.best.name())
            .expect("winner is one of the candidates");
        slot.1 += 1;
    }

    write_report(&Report {
        threads,
        single_elapsed,
        parallel_elapsed,
        single_rate,
        parallel_rate,
        warm_mix_elapsed,
        warm_mix_rate,
        mix_telemetry,
        cold_links_elapsed,
        warm_links_elapsed,
        warm_speedup,
        link_telemetry,
        winners: &winners,
    });
}

struct Report<'a> {
    threads: usize,
    single_elapsed: f64,
    parallel_elapsed: f64,
    single_rate: f64,
    parallel_rate: f64,
    warm_mix_elapsed: f64,
    warm_mix_rate: f64,
    mix_telemetry: WarmStartTelemetry,
    cold_links_elapsed: f64,
    warm_links_elapsed: f64,
    warm_speedup: f64,
    link_telemetry: WarmStartTelemetry,
    winners: &'a [(&'static str, usize)],
}

/// Path of the JSON report, anchored at the workspace root regardless of the
/// bench invocation directory.
fn report_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_whatif.json")
}

fn write_report(r: &Report<'_>) {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"whatif\",\n");
    json.push_str("  \"unit\": \"scenarios per second (predict 7 heuristics + execute best)\",\n");
    let _ = writeln!(json, "  \"clusters\": {CLUSTERS},");
    let _ = writeln!(json, "  \"scenarios\": {SCENARIOS},");
    let _ = writeln!(
        json,
        "  \"single_thread\": {{\"elapsed_s\": {:.3}, \"scenarios_per_sec\": {:.1}}},",
        r.single_elapsed, r.single_rate
    );
    let _ = writeln!(
        json,
        "  \"parallel\": {{\"threads\": {}, \"elapsed_s\": {:.3}, \
         \"scenarios_per_sec\": {:.1}, \"speedup\": {:.2}}},",
        r.threads,
        r.parallel_elapsed,
        r.parallel_rate,
        r.single_elapsed / r.parallel_elapsed
    );
    let telemetry = |t: &WarmStartTelemetry| {
        format!(
            "{{\"replayed_commits\": {}, \"repaired_commits\": {}, \"recomputed_commits\": {}}}",
            t.replayed_commits, t.repaired_commits, t.recomputed_commits
        )
    };
    let _ = writeln!(
        json,
        "  \"warm_mix\": {{\"elapsed_s\": {:.3}, \"scenarios_per_sec\": {:.1}, \
         \"telemetry\": {}}},",
        r.warm_mix_elapsed,
        r.warm_mix_rate,
        telemetry(&r.mix_telemetry)
    );
    let _ = writeln!(
        json,
        "  \"warm_single_link\": {{\"scenarios\": {WARM_SCENARIOS}, \
         \"cold_elapsed_s\": {:.3}, \"warm_elapsed_s\": {:.3}, \
         \"per_scenario_speedup\": {:.2}, \"telemetry\": {}}},",
        r.cold_links_elapsed,
        r.warm_links_elapsed,
        r.warm_speedup,
        telemetry(&r.link_telemetry)
    );
    let _ = writeln!(json, "  \"bit_identical_across_thread_counts\": true,");
    let _ = writeln!(json, "  \"warm_start_bit_identical_to_cold\": true,");
    json.push_str("  \"winners\": {");
    for (i, (name, count)) in r.winners.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{name}\": {count}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("}\n}\n");

    // Atomic replace: write a sibling tmp file, then rename into place, so an
    // interrupted bench never leaves a torn report.
    let path = report_path();
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        eprintln!("whatif: could not write {path}: {e}");
    }
}
