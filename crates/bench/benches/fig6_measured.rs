//! Figure 6 workload: discrete-event execution of the scheduled broadcasts on
//! the 88-machine GRID'5000 grid, including the grid-unaware binomial baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridcast_core::HeuristicKind;
use gridcast_experiments::{figures, ExperimentConfig};
use gridcast_plogp::{MessageSize, Time};
use gridcast_simulator::Simulator;
use gridcast_topology::{grid5000_table3, ClusterId};
use std::hint::black_box;

fn print_figure_rows() {
    let figure = figures::fig6::run(&ExperimentConfig::quick());
    println!("\n{}", figure.to_ascii_table());
}

fn bench(c: &mut Criterion) {
    print_figure_rows();
    let grid = grid5000_table3();
    let sim = Simulator::new(&grid, MessageSize::from_mib(4));
    let root = ClusterId(0);
    let mut group = c.benchmark_group("fig6_measured");

    group.bench_function("default_lam_binomial", |b| {
        b.iter(|| black_box(sim.run_default_mpi(root).completion))
    });

    for kind in [
        HeuristicKind::FlatTree,
        HeuristicKind::Fef,
        HeuristicKind::EcefLa,
        HeuristicKind::EcefLaMax,
        HeuristicKind::BottomUp,
    ] {
        let schedule = kind.schedule(&sim.problem(root));
        group.bench_with_input(
            BenchmarkId::new("execute", kind.name()),
            &schedule,
            |b, schedule| {
                b.iter(|| black_box(sim.execute_schedule(schedule, Time::ZERO).completion))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
