//! Throughput of faulty what-if execution — and the storm-survival gates.
//!
//! The fault injector's whole value is that it is *deterministic*: a seeded
//! [`FaultPlan`] must produce byte-identical outcomes from any number of
//! worker threads, and a run must either complete or say **loudly** that it
//! did not. This bench drives [`WhatIfRunner`] through a
//! [`fault_sweep`] grid — loss rates up to 20% crossed with crash sets, for
//! several fixed seeds — over a 60-cluster Table-2 grid, once on one worker
//! and once on every available core.
//!
//! It is also the **check mode** CI runs, asserting on every invocation:
//!
//! * the two sweeps are bit-identical report for report (makespans, retry
//!   counts, undelivered counts — the thread-count-independence contract),
//! * every cell is *loud*: finite completion with zero undelivered edges, or
//!   infinite completion with a non-empty undelivered list — never a silent
//!   infinite makespan,
//! * every crash-free cell at loss ≤ 0.2 completes under the retry budget
//!   (the acceptance gate: retries absorb the storm),
//! * replaying the parallel sweep is byte-identical (fixed seeds really do
//!   pin the runs).
//!
//! Throughput and the fault-activity tallies land in `BENCH_faults.json` at
//! the workspace root (written atomically).

use gridcast_bench::{random_grid, BENCH_SEED};
use gridcast_plogp::{MessageSize, Time};
use gridcast_simulator::{
    fault_sweep, NodeCrash, RetryPolicy, Scenario, WhatIfReport, WhatIfRunner,
};
use gridcast_topology::{ClusterId, NodeId};
use std::fmt::Write as _;
use std::time::Instant;

/// Cluster count of the benched grid.
const CLUSTERS: usize = 60;

/// Per-attempt loss rates swept (the acceptance gate covers p ≤ 0.2).
const LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

/// Base seeds: each contributes a full loss × crash-set sweep with
/// independently derived per-cell fault seeds.
const SEEDS: [u64; 3] = [11, 23, 47];

/// Retry budget: generous enough that eight consecutive per-attempt losses
/// (probability `0.2^8`) never exhaust it at the swept rates.
const MAX_ATTEMPTS: u32 = 8;

/// The benched sweep: for every base seed, loss rates crossed with crash
/// sets (no crash; one mid-broadcast crash; two staggered crashes).
fn storm_scenarios() -> Vec<Scenario> {
    let crash_sets = vec![
        Vec::new(),
        vec![NodeCrash {
            node: NodeId(1),
            at: Time::from_millis(5.0),
        }],
        vec![
            NodeCrash {
                node: NodeId(1),
                at: Time::from_millis(5.0),
            },
            NodeCrash {
                node: NodeId(2),
                at: Time::from_millis(8.0),
            },
        ],
    ];
    SEEDS
        .iter()
        .flat_map(|&seed| fault_sweep(BENCH_SEED ^ seed, &LOSS_RATES, &crash_sets))
        .collect()
}

fn assert_bit_identical(a: &[WhatIfReport], b: &[WhatIfReport], what: &str) {
    assert_eq!(a.len(), b.len());
    let bits = |t: Time| t.as_secs().to_bits();
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.scenario, y.scenario);
        assert_eq!(
            x.best, y.best,
            "{what}: winner diverges at cell {}",
            x.scenario
        );
        assert_eq!(
            bits(x.simulated),
            bits(y.simulated),
            "{what}: simulated makespan diverges at cell {}",
            x.scenario
        );
        assert_eq!(
            x.retries, y.retries,
            "{what}: retry count diverges at cell {}",
            x.scenario
        );
        assert_eq!(
            x.undelivered, y.undelivered,
            "{what}: undelivered count diverges at cell {}",
            x.scenario
        );
        assert_eq!(
            x.events, y.events,
            "{what}: event count diverges at cell {}",
            x.scenario
        );
    }
}

fn main() {
    let grid = random_grid(CLUSTERS, 0);
    let scenarios = storm_scenarios();
    let cells = scenarios.len();
    let retry = RetryPolicy {
        max_attempts: MAX_ATTEMPTS,
        ..RetryPolicy::default()
    };
    let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0)).with_retry(retry);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let start = Instant::now();
    let sequential = runner.clone().with_threads(1).run(&scenarios);
    let single_elapsed = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = runner.clone().with_threads(threads).run(&scenarios);
    let parallel_elapsed = start.elapsed().as_secs_f64();

    // Gate 1: bit-identical across worker-thread counts.
    assert_bit_identical(&sequential, &parallel, "1-vs-N threads");

    // Gate 2: replay identity — same seeds, same bytes.
    let replay = runner.clone().with_threads(threads).run(&scenarios);
    assert_bit_identical(&parallel, &replay, "replay");

    // Gate 3: every cell loud, every crash-free cell complete.
    let mut complete = 0usize;
    let mut incomplete = 0usize;
    let mut retries = 0usize;
    for (report, scenario) in parallel.iter().zip(&scenarios) {
        let finished = report.simulated.is_finite();
        assert_eq!(
            finished,
            report.undelivered == 0,
            "cell {} is not loud: finite={} undelivered={}",
            report.scenario,
            finished,
            report.undelivered
        );
        let faults = scenario.faults.as_ref().expect("every cell carries faults");
        if faults.crashes.is_empty() {
            assert!(
                finished,
                "crash-free cell {} (loss {}) failed to complete under {} attempts",
                report.scenario, faults.loss, MAX_ATTEMPTS
            );
        }
        if finished {
            complete += 1;
        } else {
            incomplete += 1;
        }
        retries += report.retries;
    }
    assert!(retries > 0, "the storm never forced a single retry");

    let single_rate = cells as f64 / single_elapsed;
    let parallel_rate = cells as f64 / parallel_elapsed;
    println!(
        "faults: {cells} storm cells on {CLUSTERS} clusters -> \
         {single_rate:.1}/s on 1 thread, {parallel_rate:.1}/s on {threads} threads \
         ({complete} complete, {incomplete} loudly incomplete, {retries} retries, bit-identical)"
    );

    write_report(
        threads,
        single_elapsed,
        parallel_elapsed,
        single_rate,
        parallel_rate,
        cells,
        complete,
        incomplete,
        retries,
    );
}

/// Path of the JSON report, anchored at the workspace root regardless of the
/// bench invocation directory.
fn report_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json")
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    threads: usize,
    single_elapsed: f64,
    parallel_elapsed: f64,
    single_rate: f64,
    parallel_rate: f64,
    cells: usize,
    complete: usize,
    incomplete: usize,
    retries: usize,
) {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"faults\",\n");
    json.push_str(
        "  \"unit\": \"storm cells per second (predict 7 heuristics + execute best under faults)\",\n",
    );
    let _ = writeln!(json, "  \"clusters\": {CLUSTERS},");
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"max_attempts\": {MAX_ATTEMPTS},");
    json.push_str("  \"loss_rates\": [");
    for (i, p) in LOSS_RATES.iter().enumerate() {
        let _ = write!(json, "{}{p}", if i == 0 { "" } else { ", " });
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "  \"single_thread\": {{\"elapsed_s\": {single_elapsed:.3}, \
         \"cells_per_sec\": {single_rate:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"parallel\": {{\"threads\": {threads}, \"elapsed_s\": {parallel_elapsed:.3}, \
         \"cells_per_sec\": {parallel_rate:.1}}},"
    );
    let _ = writeln!(json, "  \"bit_identical_across_thread_counts\": true,");
    let _ = writeln!(json, "  \"replay_bit_identical\": true,");
    let _ = writeln!(
        json,
        "  \"outcomes\": {{\"complete\": {complete}, \"loudly_incomplete\": {incomplete}, \
         \"retries\": {retries}}}"
    );
    json.push_str("}\n");

    // Atomic replace: write a sibling tmp file, then rename into place, so an
    // interrupted bench never leaves a torn report.
    let path = report_path();
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        eprintln!("faults: could not write {path}: {e}");
    }
}
