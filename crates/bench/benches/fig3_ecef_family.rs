//! Figure 3 workload: the ECEF family in isolation on large grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridcast_bench::problem_batch;
use gridcast_core::HeuristicKind;
use gridcast_experiments::{figures, ExperimentConfig};
use std::hint::black_box;

fn print_figure_rows() {
    let config = ExperimentConfig::quick().with_iterations(150);
    let figure = figures::fig3::run(&config);
    println!("\n{}", figure.to_ascii_table());
}

fn bench(c: &mut Criterion) {
    print_figure_rows();
    let mut group = c.benchmark_group("fig3_ecef_family");
    group.sample_size(20);
    let problems = problem_batch(30, 5);
    for kind in HeuristicKind::ecef_family() {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), 30),
            &problems,
            |b, problems| {
                b.iter(|| {
                    for problem in problems {
                        black_box(kind.schedule(black_box(problem)).makespan());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
