//! Figure 1 workload: scheduling a 1 MB broadcast on grids of 2–10 clusters with
//! every heuristic. The bench measures the scheduling cost per heuristic; the
//! mean completion times themselves are printed once at start-up so the bench
//! run also regenerates the figure's rows (at a reduced iteration count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridcast_bench::problem_batch;
use gridcast_core::HeuristicKind;
use gridcast_experiments::{figures, ExperimentConfig};
use std::hint::black_box;

fn print_figure_rows() {
    let config = ExperimentConfig::quick().with_iterations(300);
    let figure = figures::fig1::run(&config);
    println!("\n{}", figure.to_ascii_table());
}

fn bench(c: &mut Criterion) {
    print_figure_rows();
    let mut group = c.benchmark_group("fig1_small_grids");
    for clusters in [2usize, 6, 10] {
        let problems = problem_batch(clusters, 20);
        for kind in HeuristicKind::all() {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), clusters),
                &problems,
                |b, problems| {
                    b.iter(|| {
                        for problem in problems {
                            black_box(kind.schedule(black_box(problem)).makespan());
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
