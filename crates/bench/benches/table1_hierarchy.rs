//! Table 1 workload: classifying links into communication levels.

use criterion::{criterion_group, criterion_main, Criterion};
use gridcast_experiments::tables;
use gridcast_plogp::Time;
use gridcast_topology::classify_latency;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", tables::table1());
    let latencies: Vec<Time> = (0..1000)
        .map(|i| Time::from_micros(0.5 * f64::from(i) * f64::from(i % 17 + 1)))
        .collect();
    c.bench_function("table1_classify_1000_links", |b| {
        b.iter(|| {
            for &l in &latencies {
                black_box(classify_latency(black_box(l)));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
