//! Figure 5 workload: pLogP-predicted completion times on the 88-machine
//! GRID'5000 grid across message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridcast_core::HeuristicKind;
use gridcast_experiments::{figures, ExperimentConfig};
use gridcast_plogp::MessageSize;
use gridcast_simulator::Simulator;
use gridcast_topology::{grid5000_table3, ClusterId};
use std::hint::black_box;

fn print_figure_rows() {
    let figure = figures::fig5::run(&ExperimentConfig::quick());
    println!("\n{}", figure.to_ascii_table());
}

fn bench(c: &mut Criterion) {
    print_figure_rows();
    let grid = grid5000_table3();
    let mut group = c.benchmark_group("fig5_predicted");
    for mib in [1u64, 4] {
        let sim = Simulator::new(&grid, MessageSize::from_mib(mib));
        for kind in [
            HeuristicKind::FlatTree,
            HeuristicKind::EcefLa,
            HeuristicKind::EcefLaMax,
            HeuristicKind::BottomUp,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{mib}MiB")),
                &sim,
                |b, sim| b.iter(|| black_box(sim.predict_heuristic(kind, ClusterId(0)))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
