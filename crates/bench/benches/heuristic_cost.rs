//! The Section 7 "algorithm complexity" concern: how long does each heuristic
//! take to compute a schedule as the grid grows? This is the scheduling overhead
//! the simulator charges before the first message leaves the root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridcast_bench::random_problem;
use gridcast_core::HeuristicKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_cost");
    for clusters in [6usize, 10, 25, 50, 100] {
        let problem = random_problem(clusters, 0);
        group.throughput(Throughput::Elements(clusters as u64));
        for kind in HeuristicKind::all() {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), clusters),
                &problem,
                |b, problem| b.iter(|| black_box(kind.schedule(black_box(problem)))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
