//! Ablation of the Section 6 mixed strategy and of the lookahead choices: how
//! much scheduling cost does each lookahead add, and what does the mixed
//! strategy cost compared to always running a single heuristic?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridcast_bench::random_problem;
use gridcast_core::heuristics::{Ecef, Heuristic, Lookahead};
use gridcast_core::MixedStrategy;
use gridcast_experiments::{figures, ExperimentConfig};
use std::hint::black_box;

fn print_mixed_rows() {
    let config = ExperimentConfig::quick().with_iterations(200);
    let figure = figures::mixed::run(&config);
    println!("\n{}", figure.to_ascii_table());
}

fn bench(c: &mut Criterion) {
    print_mixed_rows();
    let mut group = c.benchmark_group("ablation_mixed");
    for clusters in [10usize, 50] {
        let problem = random_problem(clusters, 1);
        for lookahead in [
            Lookahead::None,
            Lookahead::MinEdge,
            Lookahead::AvgEdge,
            Lookahead::MinEdgePlusIntra,
            Lookahead::MaxEdgePlusIntra,
        ] {
            let heuristic = Ecef::with_lookahead(lookahead);
            group.bench_with_input(
                BenchmarkId::new(format!("lookahead/{}", heuristic.name()), clusters),
                &problem,
                |b, problem| b.iter(|| black_box(heuristic.schedule(black_box(problem)))),
            );
        }
        let mixed = MixedStrategy::default();
        group.bench_with_input(
            BenchmarkId::new("mixed_strategy", clusters),
            &problem,
            |b, problem| b.iter(|| black_box(mixed.schedule(black_box(problem)))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
