//! Sustained throughput of the scheduling daemon — and its consistency gates.
//!
//! The serving layer's pitch is *amortisation*: a long-running engine pool
//! plus a full-problem schedule cache should answer a realistic request mix
//! far faster than one cold scheduling run per request. This bench drives
//! [`gridcast_serve::Server::handle_batch`] directly (no subprocess, no
//! pipe noise) with a deterministic workload on a 100-cluster Table 2 grid:
//!
//! * a **cold fill** of `FILL` distinct base problems (roots × payloads),
//!   populating the cache and its warm-start commit logs;
//! * a **sustained mix** of `MIX` requests in batches of `BATCH`:
//!   80% exact repeats (cache hits), 15% fresh single-link perturbations of
//!   the bases (warm-start replays — every factor is unique, so none is ever
//!   cached), 5% never-seen payloads (cold runs).
//!
//! It is also the **check mode** CI runs, asserting on every invocation:
//!
//! * the full response transcript is bit-identical between a 1-worker and a
//!   multi-worker engine pool;
//! * every cache hit's response is byte-identical to the cold response that
//!   filled its entry (modulo the `"cache"` label);
//! * sampled warm-start responses are byte-identical to the same request
//!   served cold by a fresh daemon (modulo the label);
//! * the mix produced the intended hit/warm/cold traffic and zero errors.
//!
//! With `SERVING_GATE` set in the environment (as in CI), the sustained
//! multi-worker throughput must clear `SERVING_FLOOR` (default 1000
//! requests/s). Throughput and the p50/p99 per-request latency (batch
//! admission to response render, from the daemon's own histogram) land in
//! `BENCH_serving.json` at the workspace root, written atomically.

use gridcast_serve::{Server, ServerConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Cluster count of the benched grid (the scale the acceptance gate names).
const CLUSTERS: usize = 100;

/// Distinct base problems in the cold fill (4 roots × 4 payloads).
const FILL: usize = 16;

/// Requests in the sustained mix.
const MIX: usize = 2000;

/// Requests dispatched per batch in the sustained mix.
const BATCH: usize = 32;

/// Grid spec shared by every request; the seed pins the generated topology.
fn grid_spec() -> String {
    format!(r#""grid":{{"table2":{{"clusters":{CLUSTERS},"seed":17,"cluster_size":16}}}}"#)
}

/// One of the `FILL` base requests: distinct (root, payload) combinations.
fn base_line(b: usize) -> String {
    let root = b % 4;
    let payload = (1 + b / 4) * 1_048_576;
    format!(
        r#"{{{},"root":{root},"payload_bytes":{payload}}}"#,
        grid_spec()
    )
}

/// The sustained mix: ~80% hits, ~15% warm-start perturbations, ~5% colds.
fn mix_line(i: usize) -> String {
    match i % 20 {
        // A payload nobody asked for before (never a whole number of MiB,
        // so it cannot collide with a fill base): a guaranteed cold run.
        0 => format!(
            r#"{{{},"root":0,"payload_bytes":{}}}"#,
            grid_spec(),
            3_000_001 + i
        ),
        // A fresh single-link perturbation of a cached base: the factor is
        // unique per request, so this problem is never cached — it must
        // warm-start from the base's commit logs every time.
        1..=3 => {
            let b = i % FILL;
            let from = i % CLUSTERS;
            let to = (from + 1 + i % 7) % CLUSTERS;
            format!(
                r#"{{{},"root":{},"payload_bytes":{},"perturbations":[{{"kind":"degrade_link","from":{from},"to":{to},"factor":{}}}]}}"#,
                grid_spec(),
                b % 4,
                (1 + b / 4) * 1_048_576,
                1.5 + 0.001 * i as f64,
            )
        }
        // An exact repeat of a filled base: a cache hit.
        _ => base_line(i % FILL),
    }
}

struct WorkloadResult {
    fill_responses: Vec<String>,
    mix_responses: Vec<String>,
    mix_elapsed: f64,
    hits: u64,
    warms: u64,
    colds: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
}

fn run_workload(workers: usize) -> WorkloadResult {
    let mut server = Server::new(ServerConfig {
        workers,
        ..ServerConfig::default()
    });

    let fill: Vec<String> = (0..FILL).map(base_line).collect();
    let (fill_responses, _) = server.handle_batch(&fill);

    let lines: Vec<String> = (0..MIX).map(mix_line).collect();
    let mut mix_responses = Vec::with_capacity(MIX);
    let start = Instant::now();
    for batch in lines.chunks(BATCH) {
        let (responses, _) = server.handle_batch(batch);
        mix_responses.extend(responses);
    }
    let mix_elapsed = start.elapsed().as_secs_f64();

    let stats = server.stats();
    WorkloadResult {
        fill_responses,
        mix_responses,
        mix_elapsed,
        hits: stats.cache_hits,
        warms: stats.warm_starts,
        colds: stats.cold_runs,
        errors: stats.errors,
        p50_us: stats.latency.quantile_upper_micros(0.50),
        p99_us: stats.latency.quantile_upper_micros(0.99),
    }
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let single = run_workload(1);
    let parallel = run_workload(threads);

    // Check mode, part one: the transcript is bit-identical for any pool size.
    assert_eq!(single.fill_responses, parallel.fill_responses);
    assert_eq!(
        single.mix_responses, parallel.mix_responses,
        "responses diverge between 1 and {threads} workers"
    );

    // Check mode, part two: every hit reproduces its cold fill response
    // byte for byte (modulo the cache label).
    let mut checked_hits = 0usize;
    for (i, response) in parallel.mix_responses.iter().enumerate() {
        if i % 20 >= 4 {
            let cold = &parallel.fill_responses[i % FILL];
            assert_eq!(
                response,
                &cold.replace(r#""cache":"cold""#, r#""cache":"hit""#),
                "hit at mix index {i} diverges from its cold fill"
            );
            checked_hits += 1;
        }
    }

    // Check mode, part three: sampled warm responses match a fresh daemon
    // serving the identical request cold.
    let mut checked_warms = 0usize;
    for i in [1usize, 2, 3, 21, 42, 63, 101] {
        let line = mix_line(i);
        let warm = &parallel.mix_responses[i];
        assert!(
            warm.contains(r#""cache":"warm""#),
            "mix index {i} was expected to warm-start: {warm}"
        );
        let mut fresh = Server::new(ServerConfig::default());
        let (cold, _) = fresh.handle_batch(std::slice::from_ref(&line));
        assert_eq!(
            warm,
            &cold[0].replace(r#""cache":"cold""#, r#""cache":"warm""#),
            "warm response at mix index {i} diverges from a cold run"
        );
        checked_warms += 1;
    }

    // Check mode, part four: the mix produced the traffic it advertises.
    assert_eq!(parallel.errors, 0);
    assert_eq!(parallel.hits as usize, MIX - MIX / 20 - 3 * (MIX / 20));
    assert_eq!(parallel.warms as usize, 3 * (MIX / 20));
    assert_eq!(parallel.colds as usize, FILL + MIX / 20);

    let rate = MIX as f64 / parallel.mix_elapsed;
    let single_rate = MIX as f64 / single.mix_elapsed;
    println!(
        "serving: {MIX} mixed requests on {CLUSTERS} clusters (batch {BATCH}) -> \
         {rate:.0}/s on {threads} workers ({single_rate:.0}/s on 1), \
         p50 <= {}us, p99 <= {}us; verified {checked_hits} hits + {checked_warms} warm \
         starts bit-identical to cold",
        parallel.p50_us, parallel.p99_us
    );

    if std::env::var_os("SERVING_GATE").is_some() {
        let floor: f64 = std::env::var("SERVING_FLOOR")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1000.0);
        assert!(
            rate >= floor,
            "sustained serving throughput {rate:.0} req/s is below the {floor:.0} req/s floor"
        );
    }

    write_report(&parallel, &single, threads, rate, single_rate);
}

/// Path of the JSON report, anchored at the workspace root regardless of the
/// bench invocation directory.
fn report_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json")
}

fn write_report(
    parallel: &WorkloadResult,
    single: &WorkloadResult,
    threads: usize,
    rate: f64,
    single_rate: f64,
) {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"serving\",\n");
    json.push_str(
        "  \"unit\": \"requests per second (sustained hit/warm/cold mix, engine-pool daemon)\",\n",
    );
    let _ = writeln!(json, "  \"clusters\": {CLUSTERS},");
    let _ = writeln!(json, "  \"fill_requests\": {FILL},");
    let _ = writeln!(json, "  \"mix_requests\": {MIX},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let leg = |r: &WorkloadResult, workers: usize, rate: f64| {
        format!(
            "{{\"workers\": {workers}, \"mix_elapsed_s\": {:.3}, \"requests_per_sec\": {rate:.1}, \
             \"p50_us\": {}, \"p99_us\": {}}}",
            r.mix_elapsed, r.p50_us, r.p99_us
        )
    };
    let _ = writeln!(
        json,
        "  \"single_thread\": {},",
        leg(single, 1, single_rate)
    );
    let _ = writeln!(json, "  \"parallel\": {},", leg(parallel, threads, rate));
    let _ = writeln!(
        json,
        "  \"traffic\": {{\"cache_hits\": {}, \"warm_starts\": {}, \"cold_runs\": {}, \
         \"errors\": {}}},",
        parallel.hits, parallel.warms, parallel.colds, parallel.errors
    );
    let _ = writeln!(json, "  \"bit_identical_across_worker_counts\": true,");
    let _ = writeln!(json, "  \"cached_bit_identical_to_cold\": true,");
    let _ = writeln!(json, "  \"warm_start_bit_identical_to_cold\": true");
    json.push_str("}\n");

    // Atomic replace: write a sibling tmp file, then rename into place, so an
    // interrupted bench never leaves a torn report.
    let path = report_path();
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        eprintln!("serving: could not write {path}: {e}");
    }
}
