//! Figure 4 workload: the Monte-Carlo hit-rate computation (schedule the same
//! random instance with every ECEF-like heuristic and compare to the global
//! minimum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridcast_bench::problem_batch;
use gridcast_core::{global_minimum, HeuristicKind};
use gridcast_experiments::{figures, ExperimentConfig};
use std::hint::black_box;

fn print_figure_rows() {
    let config = ExperimentConfig::quick().with_iterations(300);
    let figure = figures::fig4::run(&config);
    println!("\n{}", figure.to_ascii_table());
}

fn bench(c: &mut Criterion) {
    print_figure_rows();
    let mut group = c.benchmark_group("fig4_hit_rate");
    group.sample_size(20);
    for clusters in [10usize, 50] {
        let problems = problem_batch(clusters, 5);
        group.bench_with_input(
            BenchmarkId::new("global_minimum", clusters),
            &problems,
            |b, problems| {
                b.iter(|| {
                    for problem in problems {
                        black_box(global_minimum(
                            black_box(problem),
                            &HeuristicKind::ecef_family(),
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
