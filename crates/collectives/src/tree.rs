//! Explicit broadcast trees over the local ranks of a cluster.

use gridcast_plogp::{MessageSize, PLogP, Time};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Errors raised when validating a broadcast tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// A rank appears as the child of more than one parent.
    DuplicateChild {
        /// The rank in question.
        rank: usize,
    },
    /// A rank is never reached from the root.
    Unreachable {
        /// The rank in question.
        rank: usize,
    },
    /// A child index is outside `0..size`.
    OutOfRange {
        /// The rank in question.
        rank: usize,
    },
    /// The root appears as somebody's child.
    RootHasParent,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "broadcast tree has no nodes"),
            TreeError::DuplicateChild { rank } => {
                write!(f, "rank {rank} has more than one parent")
            }
            TreeError::Unreachable { rank } => {
                write!(f, "rank {rank} is not reachable from the root")
            }
            TreeError::OutOfRange { rank } => write!(f, "rank {rank} is out of range"),
            TreeError::RootHasParent => write!(f, "the root rank appears as a child"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A broadcast tree over local ranks `0..size`, rooted at `root`.
///
/// `children[r]` lists the ranks `r` sends the message to, **in sending order** —
/// the order matters because each send occupies the sender for one gap `g(m)`
/// before the next can start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastTree {
    root: usize,
    children: Vec<Vec<usize>>,
}

impl BroadcastTree {
    /// Creates a tree from explicit children lists and validates it.
    pub fn new(root: usize, children: Vec<Vec<usize>>) -> Result<Self, TreeError> {
        let tree = BroadcastTree { root, children };
        tree.validate()?;
        Ok(tree)
    }

    /// Number of ranks covered by the tree.
    #[inline]
    pub fn size(&self) -> usize {
        self.children.len()
    }

    /// The root rank.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The ordered children of `rank`.
    #[inline]
    pub fn children(&self, rank: usize) -> &[usize] {
        &self.children[rank]
    }

    /// The parent of each rank (`None` for the root).
    pub fn parents(&self) -> Vec<Option<usize>> {
        let mut parents = vec![None; self.size()];
        for (p, kids) in self.children.iter().enumerate() {
            for &k in kids {
                parents[k] = Some(p);
            }
        }
        parents
    }

    /// Depth (number of hops from the root) of every rank.
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![usize::MAX; self.size()];
        depth[self.root] = 0;
        let mut queue = VecDeque::from([self.root]);
        while let Some(r) = queue.pop_front() {
            for &c in &self.children[r] {
                if depth[c] == usize::MAX {
                    depth[c] = depth[r] + 1;
                    queue.push_back(c);
                }
            }
        }
        depth
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Checks that the tree spans every rank exactly once.
    pub fn validate(&self) -> Result<(), TreeError> {
        let n = self.size();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if self.root >= n {
            return Err(TreeError::OutOfRange { rank: self.root });
        }
        let mut seen = vec![false; n];
        for kids in &self.children {
            for &k in kids {
                if k >= n {
                    return Err(TreeError::OutOfRange { rank: k });
                }
                if k == self.root {
                    return Err(TreeError::RootHasParent);
                }
                if seen[k] {
                    return Err(TreeError::DuplicateChild { rank: k });
                }
                seen[k] = true;
            }
        }
        // Reachability from the root.
        let depths = self.depths();
        if let Some(rank) = (0..n).find(|&r| depths[r] == usize::MAX) {
            return Err(TreeError::Unreachable { rank });
        }
        Ok(())
    }

    /// Predicts the completion time of broadcasting a message of size `m` along
    /// this tree when every rank pair shares the same pLogP parameters (the
    /// *logical homogeneous cluster* assumption of the paper).
    ///
    /// Each rank forwards the message to its children in listed order; a send
    /// occupies the sender for `g(m)` and the child holds the full message
    /// `L + g(m)` after the send began. The returned time is the moment the last
    /// rank holds the message, the `T_i(m)` of the paper.
    pub fn completion_time(&self, plogp: &PLogP, m: MessageSize) -> Time {
        let ready = self.ready_times(plogp, m);
        ready.into_iter().max().unwrap_or(Time::ZERO)
    }

    /// Per-rank times at which the message becomes available, under the same
    /// model as [`BroadcastTree::completion_time`].
    pub fn ready_times(&self, plogp: &PLogP, m: MessageSize) -> Vec<Time> {
        let gap = plogp.gap(m);
        let latency = plogp.latency();
        let mut ready = vec![Time::ZERO; self.size()];
        // Traverse in BFS order so parents are processed before children.
        let mut queue = VecDeque::from([self.root]);
        while let Some(r) = queue.pop_front() {
            let mut send_start = ready[r];
            for &c in &self.children[r] {
                ready[c] = send_start + gap + latency;
                send_start += gap;
                queue.push_back(c);
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plogp_ms(latency: f64, gap: f64) -> PLogP {
        PLogP::constant(Time::from_millis(latency), Time::from_millis(gap))
    }

    #[test]
    fn validation_catches_malformed_trees() {
        assert_eq!(BroadcastTree::new(0, vec![]), Err(TreeError::Empty));
        // Child index 5 does not exist in a 2-rank tree.
        assert_eq!(
            BroadcastTree::new(0, vec![vec![5], vec![]]),
            Err(TreeError::OutOfRange { rank: 5 })
        );
        // Root index outside the tree.
        assert_eq!(
            BroadcastTree::new(9, vec![vec![], vec![]]),
            Err(TreeError::OutOfRange { rank: 9 })
        );
    }

    #[test]
    fn validation_catches_duplicates_and_unreachable() {
        // Rank 2 has two parents.
        let dup = BroadcastTree::new(0, vec![vec![1, 2], vec![2], vec![]]);
        assert_eq!(dup, Err(TreeError::DuplicateChild { rank: 2 }));
        // Rank 2 unreachable.
        let unreachable = BroadcastTree::new(0, vec![vec![1], vec![], vec![]]);
        assert_eq!(unreachable, Err(TreeError::Unreachable { rank: 2 }));
        // Root as child.
        let root_child = BroadcastTree::new(0, vec![vec![1], vec![0]]);
        assert_eq!(root_child, Err(TreeError::RootHasParent));
    }

    #[test]
    fn two_node_tree_cost_is_one_transfer() {
        let tree = BroadcastTree::new(0, vec![vec![1], vec![]]).unwrap();
        let p = plogp_ms(1.0, 10.0);
        assert_eq!(
            tree.completion_time(&p, MessageSize::from_mib(1)),
            Time::from_millis(11.0)
        );
    }

    #[test]
    fn sequential_sends_occupy_the_sender() {
        // A 4-node flat tree: root sends to 1, then 2, then 3.
        let tree = BroadcastTree::new(0, vec![vec![1, 2, 3], vec![], vec![], vec![]]).unwrap();
        let p = plogp_ms(1.0, 10.0);
        let ready = tree.ready_times(&p, MessageSize::from_mib(1));
        assert_eq!(ready[1], Time::from_millis(11.0));
        assert_eq!(ready[2], Time::from_millis(21.0));
        assert_eq!(ready[3], Time::from_millis(31.0));
        assert_eq!(
            tree.completion_time(&p, MessageSize::from_mib(1)),
            Time::from_millis(31.0)
        );
    }

    #[test]
    fn depths_parents_and_height() {
        let tree = BroadcastTree::new(0, vec![vec![1, 2], vec![3], vec![], vec![]]).unwrap();
        assert_eq!(tree.depths(), vec![0, 1, 1, 2]);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.parents(), vec![None, Some(0), Some(0), Some(1)]);
        assert_eq!(tree.children(0), &[1, 2]);
        assert_eq!(tree.root(), 0);
    }

    #[test]
    fn child_order_changes_completion() {
        // Sending to the deep subtree first finishes earlier than sending to it
        // last: the classic motivation for largest-subtree-first ordering.
        let p = plogp_ms(0.0, 10.0);
        let m = MessageSize::from_mib(1);
        let deep_first = BroadcastTree::new(0, vec![vec![1, 3], vec![2], vec![], vec![]]).unwrap();
        let deep_last = BroadcastTree::new(0, vec![vec![3, 1], vec![2], vec![], vec![]]).unwrap();
        assert!(deep_first.completion_time(&p, m) < deep_last.completion_time(&p, m));
    }
}
