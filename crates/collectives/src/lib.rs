//! # gridcast-collectives
//!
//! Intra-cluster collective communication algorithms and their pLogP cost models.
//!
//! Once a cluster coordinator has received the broadcast message from another
//! cluster, it must disseminate it to the machines of its own cluster. The paper
//! (following MagPIe and the authors' earlier work on intra-cluster collective
//! tuning) uses efficient local strategies — typically binomial trees — and, more
//! importantly, *predicts* the time `T_i(m)` this local broadcast takes, because
//! the grid-aware heuristics (ECEF-LAt, ECEF-LAT, BottomUp) feed that prediction
//! into their scheduling decisions.
//!
//! This crate provides:
//!
//! * [`BroadcastTree`] — an explicit tree of local ranks with a generic pLogP
//!   completion-time evaluator,
//! * the classical tree shapes: [`binomial_tree`], [`flat_tree`], [`chain_tree`],
//!   plus the segmented/pipelined chain and the scatter–allgather (van de Geijn)
//!   algorithm for large messages,
//! * [`intra_broadcast_time`] — the `T_i(m)` predictor used by the scheduler: the
//!   best predicted time over all available algorithms for a given cluster,
//! * the [`PatternCost`] trait and its [`Pattern`] implementations — the single
//!   source of intra-cluster cost models for the *scatter*, *gather*,
//!   *all-to-all* and *allgather* patterns mentioned as future work in the
//!   paper's conclusion ([`patterns`]), consumed by the pattern-agnostic
//!   scheduling engine in `gridcast-core`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algorithms;
pub mod cost;
pub mod patterns;
pub mod tree;

pub use algorithms::{binomial_tree, chain_tree, flat_tree, BroadcastAlgorithm};
pub use cost::{best_algorithm, intra_broadcast_time, predict_broadcast_time};
pub use patterns::{concat_blocks, Pattern, PatternCost};
pub use tree::{BroadcastTree, TreeError};
