//! The `T_i(m)` predictor used by the grid-aware scheduling heuristics.

use crate::algorithms::BroadcastAlgorithm;
use gridcast_plogp::{MessageSize, PLogP, Time};
use gridcast_topology::{Cluster, IntraClusterParams};

/// Predicts the completion time of a broadcast among `size` ranks sharing the
/// pLogP parameters `plogp`, using a specific algorithm.
pub fn predict_broadcast_time(
    algorithm: BroadcastAlgorithm,
    plogp: &PLogP,
    size: u32,
    m: MessageSize,
) -> Time {
    algorithm.predict(plogp, size, m)
}

/// Selects the fastest predicted intra-cluster broadcast algorithm for a cluster
/// of `size` ranks, returning the algorithm and its predicted time.
///
/// This mirrors the authors' companion work on intra-cluster collective tuning:
/// the library measures the cluster's pLogP parameters once and then picks the
/// best algorithm per message size from the model, instead of hard-coding a
/// single strategy.
pub fn best_algorithm(plogp: &PLogP, size: u32, m: MessageSize) -> (BroadcastAlgorithm, Time) {
    BroadcastAlgorithm::candidates()
        .into_iter()
        .map(|algo| (algo, algo.predict(plogp, size, m)))
        .min_by_key(|&(_, t)| t)
        .expect("candidate list is never empty")
}

/// The intra-cluster broadcast time `T_i(m)` of a cluster, as used by the
/// grid-aware heuristics (ECEF-LAt, ECEF-LAT, BottomUp) and by the makespan
/// computation of every schedule.
///
/// * singleton clusters broadcast instantly,
/// * clusters with a fixed time (the Monte-Carlo simulation mode) return it
///   unchanged,
/// * modelled clusters return the best predicted algorithm time.
pub fn intra_broadcast_time(cluster: &Cluster, m: MessageSize) -> Time {
    if cluster.is_singleton() {
        return Time::ZERO;
    }
    match &cluster.intra {
        IntraClusterParams::Fixed { broadcast_time } => *broadcast_time,
        IntraClusterParams::Modelled { plogp } => best_algorithm(plogp, cluster.size, m).1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::ClusterId;

    fn lan() -> PLogP {
        PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6)
    }

    #[test]
    fn best_algorithm_never_worse_than_binomial() {
        let p = lan();
        for &size in &[2u32, 4, 8, 20, 31, 64, 128] {
            for &mib in &[1u64, 4] {
                let m = MessageSize::from_mib(mib);
                let (_, best) = best_algorithm(&p, size, m);
                let binomial =
                    predict_broadcast_time(BroadcastAlgorithm::BinomialTree, &p, size, m);
                assert!(best <= binomial, "size {size}, {mib} MiB");
            }
        }
    }

    #[test]
    fn fixed_time_cluster_returns_configured_value() {
        let c = Cluster::with_fixed_time(ClusterId(0), "sim", 16, Time::from_millis(1234.0));
        assert_eq!(
            intra_broadcast_time(&c, MessageSize::from_mib(1)),
            Time::from_millis(1234.0)
        );
    }

    #[test]
    fn singleton_cluster_is_free_even_with_fixed_time() {
        let c = Cluster::with_fixed_time(ClusterId(1), "solo", 1, Time::from_millis(500.0));
        assert_eq!(
            intra_broadcast_time(&c, MessageSize::from_mib(1)),
            Time::ZERO
        );
    }

    #[test]
    fn modelled_cluster_time_grows_with_message_size() {
        let c = Cluster::with_plogp(ClusterId(2), "orsay", 31, lan());
        let small = intra_broadcast_time(&c, MessageSize::from_kib(1));
        let large = intra_broadcast_time(&c, MessageSize::from_mib(4));
        assert!(small < large);
        assert!(small > Time::ZERO);
    }

    #[test]
    fn modelled_cluster_time_grows_with_cluster_size() {
        let small = Cluster::with_plogp(ClusterId(0), "small", 4, lan());
        let big = Cluster::with_plogp(ClusterId(1), "big", 128, lan());
        let m = MessageSize::from_mib(1);
        assert!(intra_broadcast_time(&small, m) < intra_broadcast_time(&big, m));
    }
}
