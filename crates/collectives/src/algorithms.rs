//! Tree shapes and algorithm selection for intra-cluster broadcasts.

use crate::tree::BroadcastTree;
use gridcast_plogp::{MessageSize, PLogP, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The intra-cluster broadcast algorithms known to the library.
///
/// The paper's clusters use binomial trees (the MagPIe default); the other
/// shapes are provided both as baselines and because the authors' companion work
/// on intra-cluster collective tuning selects among several algorithms depending
/// on message size and cluster size — which is exactly what
/// [`crate::best_algorithm`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BroadcastAlgorithm {
    /// The coordinator sends to every other rank sequentially.
    FlatTree,
    /// Classic binomial (recursive doubling) tree, ⌈log₂ P⌉ rounds.
    BinomialTree,
    /// A linear chain: rank `i` forwards to rank `i + 1`.
    Chain,
    /// A segmented chain: the message is split into segments that are pipelined
    /// along the chain.
    Pipeline {
        /// Number of segments the message is split into.
        segments: u32,
    },
    /// Scatter (binomial) followed by a ring allgather — the van de Geijn
    /// algorithm, efficient for large messages on large clusters.
    ScatterAllgather,
}

impl BroadcastAlgorithm {
    /// Every algorithm considered by [`crate::best_algorithm`], with a couple of
    /// representative pipeline segment counts.
    pub fn candidates() -> Vec<BroadcastAlgorithm> {
        vec![
            BroadcastAlgorithm::FlatTree,
            BroadcastAlgorithm::BinomialTree,
            BroadcastAlgorithm::Chain,
            BroadcastAlgorithm::Pipeline { segments: 8 },
            BroadcastAlgorithm::Pipeline { segments: 32 },
            BroadcastAlgorithm::ScatterAllgather,
        ]
    }

    /// Short human-readable name.
    pub fn name(&self) -> String {
        match self {
            BroadcastAlgorithm::FlatTree => "flat".into(),
            BroadcastAlgorithm::BinomialTree => "binomial".into(),
            BroadcastAlgorithm::Chain => "chain".into(),
            BroadcastAlgorithm::Pipeline { segments } => format!("pipeline({segments})"),
            BroadcastAlgorithm::ScatterAllgather => "scatter-allgather".into(),
        }
    }

    /// Predicted completion time for broadcasting `m` bytes among `size` ranks
    /// that all share the pLogP parameters `plogp`.
    pub fn predict(&self, plogp: &PLogP, size: u32, m: MessageSize) -> Time {
        if size <= 1 {
            return Time::ZERO;
        }
        match self {
            BroadcastAlgorithm::FlatTree => flat_tree(size as usize).completion_time(plogp, m),
            BroadcastAlgorithm::BinomialTree => {
                binomial_tree(size as usize).completion_time(plogp, m)
            }
            BroadcastAlgorithm::Chain => chain_tree(size as usize).completion_time(plogp, m),
            BroadcastAlgorithm::Pipeline { segments } => pipeline_time(plogp, size, m, *segments),
            BroadcastAlgorithm::ScatterAllgather => scatter_allgather_time(plogp, size, m),
        }
    }
}

impl fmt::Display for BroadcastAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Builds a flat tree over `size` ranks rooted at rank 0.
pub fn flat_tree(size: usize) -> BroadcastTree {
    assert!(size >= 1);
    let mut children = vec![Vec::new(); size];
    children[0] = (1..size).collect();
    BroadcastTree::new(0, children).expect("flat tree construction is always valid")
}

/// Builds the classic binomial tree over `size` ranks rooted at rank 0: at round
/// `k` every rank `r < 2^k` that holds the message sends it to rank `r + 2^k`.
pub fn binomial_tree(size: usize) -> BroadcastTree {
    assert!(size >= 1);
    let mut children = vec![Vec::new(); size];
    let mut offset = 1usize;
    while offset < size {
        for (r, child_list) in children.iter_mut().enumerate().take(offset.min(size)) {
            let target = r + offset;
            if target < size {
                child_list.push(target);
            }
        }
        offset *= 2;
    }
    BroadcastTree::new(0, children).expect("binomial tree construction is always valid")
}

/// Builds a linear chain over `size` ranks rooted at rank 0.
pub fn chain_tree(size: usize) -> BroadcastTree {
    assert!(size >= 1);
    let mut children = vec![Vec::new(); size];
    for (r, child_list) in children.iter_mut().enumerate().take(size.saturating_sub(1)) {
        child_list.push(r + 1);
    }
    BroadcastTree::new(0, children).expect("chain construction is always valid")
}

/// Completion time of a segmented (pipelined) chain broadcast: the message is
/// split into `segments` pieces forwarded along the chain as soon as they
/// arrive. With `P` ranks and segment gap `g_s = g(m / segments)`, the last rank
/// holds the last segment after `(P - 2 + segments)` forwarding steps of
/// `g_s + L` (the classic store-and-forward pipelining bound).
pub fn pipeline_time(plogp: &PLogP, size: u32, m: MessageSize, segments: u32) -> Time {
    if size <= 1 {
        return Time::ZERO;
    }
    let segments = segments.max(1);
    let segment_size = MessageSize::from_bytes(m.as_bytes().div_ceil(u64::from(segments)));
    let hop = plogp.gap(segment_size) + plogp.latency();
    hop * (size - 2 + segments)
}

/// Completion time of the scatter–allgather (van de Geijn) broadcast: a binomial
/// scatter of `m / P` blocks followed by a ring allgather. Efficient when the
/// per-byte cost dominates, because every rank only sends ~`2·m/P·(P-1)/P` bytes.
pub fn scatter_allgather_time(plogp: &PLogP, size: u32, m: MessageSize) -> Time {
    if size <= 1 {
        return Time::ZERO;
    }
    let p = u64::from(size);
    let block = MessageSize::from_bytes(m.as_bytes().div_ceil(p));
    // Binomial scatter: at round k the transmitted block halves; ⌈log₂ P⌉ rounds.
    let rounds = (f64::from(size)).log2().ceil() as u32;
    let mut scatter = Time::ZERO;
    let mut blocks_in_flight = p;
    for _ in 0..rounds {
        blocks_in_flight = blocks_in_flight.div_ceil(2);
        let chunk = MessageSize::from_bytes(block.as_bytes() * blocks_in_flight);
        scatter += plogp.latency() + plogp.gap(chunk);
    }
    // Ring allgather: P−1 steps, one block each.
    let allgather = (plogp.latency() + plogp.gap(block)) * (size - 1);
    scatter + allgather
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> PLogP {
        // 50 µs latency, 9 µs/KiB-ish gap via constant-rate affine model.
        PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6)
    }

    #[test]
    fn binomial_tree_shape_for_power_of_two() {
        let t = binomial_tree(8);
        assert_eq!(t.children(0), &[1, 2, 4]);
        assert_eq!(t.children(1), &[3, 5]);
        assert_eq!(t.children(2), &[6]);
        assert_eq!(t.children(3), &[7]);
        assert_eq!(t.height(), 3);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn binomial_tree_covers_non_power_of_two() {
        // With unit gap and zero latency, the completion time of a binomial
        // broadcast equals its number of communication rounds, ⌈log₂ P⌉.
        let unit = PLogP::constant(Time::ZERO, Time::from_secs(1.0));
        for size in [1usize, 2, 3, 5, 6, 7, 20, 29, 31, 88] {
            let t = binomial_tree(size);
            assert_eq!(t.size(), size);
            assert!(t.validate().is_ok(), "size {size}");
            let expected_rounds = if size == 1 {
                0.0
            } else {
                (size as f64).log2().ceil()
            };
            let completion = t.completion_time(&unit, MessageSize::from_kib(1));
            assert!(
                (completion.as_secs() - expected_rounds).abs() < 1e-9,
                "size {size}: completion {completion}, expected {expected_rounds} rounds"
            );
            assert!(t.height() <= expected_rounds as usize);
        }
    }

    #[test]
    fn flat_and_chain_shapes() {
        let f = flat_tree(5);
        assert_eq!(f.children(0), &[1, 2, 3, 4]);
        assert_eq!(f.height(), 1);
        let c = chain_tree(5);
        assert_eq!(c.children(0), &[1]);
        assert_eq!(c.children(3), &[4]);
        assert_eq!(c.height(), 4);
    }

    #[test]
    fn binomial_beats_flat_and_chain_for_small_messages() {
        let p = lan();
        let m = MessageSize::from_kib(1);
        let size = 32;
        let binomial = BroadcastAlgorithm::BinomialTree.predict(&p, size, m);
        let flat = BroadcastAlgorithm::FlatTree.predict(&p, size, m);
        let chain = BroadcastAlgorithm::Chain.predict(&p, size, m);
        assert!(binomial < flat, "binomial {binomial} vs flat {flat}");
        assert!(binomial < chain, "binomial {binomial} vs chain {chain}");
    }

    #[test]
    fn pipelining_helps_large_messages_on_long_chains() {
        let p = lan();
        let m = MessageSize::from_mib(4);
        let size = 32;
        let chain = BroadcastAlgorithm::Chain.predict(&p, size, m);
        let pipe = BroadcastAlgorithm::Pipeline { segments: 32 }.predict(&p, size, m);
        assert!(
            pipe < chain,
            "pipeline {pipe} should beat plain chain {chain}"
        );
    }

    #[test]
    fn scatter_allgather_wins_for_large_messages_on_large_clusters() {
        let p = lan();
        let m = MessageSize::from_mib(4);
        let size = 64;
        let binomial = BroadcastAlgorithm::BinomialTree.predict(&p, size, m);
        let vdg = BroadcastAlgorithm::ScatterAllgather.predict(&p, size, m);
        assert!(
            vdg < binomial,
            "scatter-allgather {vdg} vs binomial {binomial}"
        );
    }

    #[test]
    fn single_rank_broadcast_is_free_for_every_algorithm() {
        let p = lan();
        let m = MessageSize::from_mib(1);
        for algo in BroadcastAlgorithm::candidates() {
            assert_eq!(algo.predict(&p, 1, m), Time::ZERO, "{algo}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = BroadcastAlgorithm::candidates()
            .iter()
            .map(|a| a.name())
            .collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
        assert_eq!(BroadcastAlgorithm::BinomialTree.to_string(), "binomial");
    }
}
