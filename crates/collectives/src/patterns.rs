//! Cost models for the other collective patterns mentioned by the paper.
//!
//! The conclusion of the paper announces follow-up work on grid-aware *scatter*
//! and *all-to-all* schedules. This module provides the intra-cluster cost models
//! for those patterns so that the scheduling layer can be extended to them: the
//! inter-cluster scheduling formalism (sets A/B, ready times) is pattern-agnostic
//! once the per-cluster completion time of the pattern is known.

use gridcast_plogp::{MessageSize, PLogP, Time};

/// Predicted completion time of a binomial-tree **scatter** of `m` bytes *per
/// rank* among `size` ranks: at round `k` the transmitted block halves, so the
/// root pushes `m·(P−1)/P ≈ m` bytes in total but the critical path only carries
/// `⌈log₂ P⌉` latencies.
pub fn scatter_time(plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
    if size <= 1 {
        return Time::ZERO;
    }
    let mut remaining = u64::from(size);
    let mut total = Time::ZERO;
    while remaining > 1 {
        let half = remaining / 2;
        let chunk = MessageSize::from_bytes(per_rank.as_bytes() * half);
        total += plogp.latency() + plogp.gap(chunk);
        remaining -= half;
    }
    total
}

/// Predicted completion time of a **gather** — symmetric to [`scatter_time`]
/// under the pLogP model.
pub fn gather_time(plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
    scatter_time(plogp, size, per_rank)
}

/// Predicted completion time of an **all-to-all** personalised exchange of `m`
/// bytes per rank pair, implemented as `P − 1` pairwise exchange rounds (the
/// classic linear algorithm used for large messages).
pub fn alltoall_time(plogp: &PLogP, size: u32, per_pair: MessageSize) -> Time {
    if size <= 1 {
        return Time::ZERO;
    }
    (plogp.latency() + plogp.gap(per_pair)) * (size - 1)
}

/// Predicted completion time of an **allgather** implemented as a ring: `P − 1`
/// steps, each forwarding one rank's block.
pub fn allgather_time(plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
    if size <= 1 {
        return Time::ZERO;
    }
    (plogp.latency() + plogp.gap(per_rank)) * (size - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> PLogP {
        PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6)
    }

    #[test]
    fn single_rank_patterns_are_free() {
        let p = lan();
        let m = MessageSize::from_kib(64);
        assert_eq!(scatter_time(&p, 1, m), Time::ZERO);
        assert_eq!(alltoall_time(&p, 1, m), Time::ZERO);
        assert_eq!(allgather_time(&p, 1, m), Time::ZERO);
        assert_eq!(gather_time(&p, 1, m), Time::ZERO);
    }

    #[test]
    fn scatter_is_cheaper_than_broadcasting_everything() {
        // Scattering P blocks of m/P bytes moves less data on the critical path
        // than broadcasting the full m bytes along a binomial tree.
        let p = lan();
        let size = 32u32;
        let total = MessageSize::from_mib(4);
        let per_rank = MessageSize::from_bytes(total.as_bytes() / u64::from(size));
        let scatter = scatter_time(&p, size, per_rank);
        let bcast = crate::algorithms::BroadcastAlgorithm::BinomialTree.predict(&p, size, total);
        assert!(scatter < bcast);
    }

    #[test]
    fn alltoall_grows_linearly_with_cluster_size() {
        let p = lan();
        let m = MessageSize::from_kib(256);
        let t8 = alltoall_time(&p, 8, m);
        let t16 = alltoall_time(&p, 16, m);
        let ratio = t16 / t8;
        assert!((ratio - 15.0 / 7.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn gather_matches_scatter() {
        let p = lan();
        let m = MessageSize::from_kib(32);
        assert_eq!(gather_time(&p, 20, m), scatter_time(&p, 20, m));
    }

    #[test]
    fn scatter_critical_path_has_log_rounds_of_latency() {
        // With a zero-bandwidth-cost model the scatter cost is exactly
        // ⌈log₂ P⌉ · L.
        let p = PLogP::constant(Time::from_millis(1.0), Time::ZERO);
        let t = scatter_time(&p, 16, MessageSize::from_kib(1));
        assert_eq!(t, Time::from_millis(4.0));
    }
}
