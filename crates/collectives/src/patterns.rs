//! Cost models for the other collective patterns mentioned by the paper,
//! unified behind the [`PatternCost`] trait.
//!
//! The conclusion of the paper announces follow-up work on grid-aware *scatter*
//! and *all-to-all* schedules. The inter-cluster scheduling formalism (sets
//! A/B, ready times — `gridcast_core::ScheduleEngine`) is pattern-agnostic once
//! the per-cluster completion time of a pattern is known, so this module keeps
//! a single implementation of each pattern's intra-cluster cost: every
//! consumer — the broadcast problem builder, the scatter scheduling layer in
//! `gridcast-core`, the simulator — goes through [`PatternCost`] instead of
//! re-deriving the formulas.

use gridcast_plogp::{MessageSize, PLogP, Time};
use serde::{Deserialize, Serialize};

/// A collective pattern whose intra-cluster completion time can be predicted
/// from a homogeneous pLogP model and the cluster size.
///
/// `per_rank` is the pattern's natural per-element size: bytes per rank for
/// scatter/gather/allgather, bytes per rank *pair* for all-to-all.
pub trait PatternCost {
    /// Display name of the pattern.
    fn name(&self) -> &'static str;

    /// Predicted intra-cluster completion time among `size` ranks.
    fn intra_time(&self, plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time;

    /// Bytes of the **aggregate block** a cluster of `size` ranks contributes to
    /// (or receives from) the inter-cluster level of the pattern: the
    /// concatenation of its ranks' individual blocks. This is the message a
    /// coordinator pushes or relays over a wide-area link on behalf of a whole
    /// cluster, so wide-area gaps must be priced for it — not for `per_rank`.
    ///
    /// The byte count is direction-agnostic, but **which directed link prices
    /// it is not**: the gap must be evaluated on the link the aggregate
    /// actually travels. For scatter-direction patterns that is the
    /// `root → cluster` link; for the time-reversed duals (gather, and the
    /// incoming half of allgather/all-to-all) it is the `cluster → root`
    /// (sender-side) link — on asymmetric grids the two differ, and pricing
    /// the wrong direction is exactly the interface-inversion bug the
    /// corrected `alltoall_estimate`/`allgather_estimate` guard against.
    fn aggregate_bytes(&self, size: u32, per_rank: MessageSize) -> MessageSize {
        MessageSize::from_bytes(per_rank.as_bytes() * u64::from(size))
    }
}

/// Size of the concatenation of several blocks travelling as **one** wide-area
/// message — the payload of a relayed transfer that carries other clusters'
/// blocks alongside the receiver's own (scatter direction), or a gather
/// subtree's blocks travelling towards the root (the time-reversed dual —
/// same byte count, priced on the opposite directed link). Concatenation is
/// plain byte addition; the saving of relaying comes from pricing one
/// `g(Σ m_i)` instead of several `g(m_i)` (amortising the per-message cost)
/// and from the relay's links, not from any compression.
pub fn concat_blocks(blocks: impl IntoIterator<Item = MessageSize>) -> MessageSize {
    MessageSize::from_bytes(blocks.into_iter().map(|b| b.as_bytes()).sum())
}

/// The personalised-data collective patterns modelled by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Binomial-tree scatter: the transmitted block halves every round.
    Scatter,
    /// Gather — symmetric to scatter under the pLogP model.
    Gather,
    /// Personalised all-to-all as `P − 1` pairwise exchange rounds.
    AllToAll,
    /// Ring allgather: `P − 1` steps, each forwarding one rank's block.
    AllGather,
}

impl PatternCost for Pattern {
    fn name(&self) -> &'static str {
        match self {
            Pattern::Scatter => "scatter",
            Pattern::Gather => "gather",
            Pattern::AllToAll => "alltoall",
            Pattern::AllGather => "allgather",
        }
    }

    fn intra_time(&self, plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
        if size <= 1 {
            return Time::ZERO;
        }
        match self {
            Pattern::Scatter | Pattern::Gather => {
                // Binomial tree: at round `k` the transmitted block halves, so
                // the root pushes `m·(P−1)/P ≈ m` bytes in total but the
                // critical path only carries `⌈log₂ P⌉` latencies.
                let mut remaining = u64::from(size);
                let mut total = Time::ZERO;
                while remaining > 1 {
                    let half = remaining / 2;
                    let chunk = MessageSize::from_bytes(per_rank.as_bytes() * half);
                    total += plogp.latency() + plogp.gap(chunk);
                    remaining -= half;
                }
                total
            }
            // All-to-all uses the classic linear pairwise-exchange algorithm
            // for large messages; the ring allgather has the same cost shape:
            // `P − 1` steps of one latency plus one per-rank gap.
            Pattern::AllToAll | Pattern::AllGather => {
                (plogp.latency() + plogp.gap(per_rank)) * (size - 1)
            }
        }
    }
}

/// Predicted completion time of a binomial-tree **scatter** of `m` bytes *per
/// rank* among `size` ranks. Thin wrapper over [`Pattern::Scatter`].
pub fn scatter_time(plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
    Pattern::Scatter.intra_time(plogp, size, per_rank)
}

/// Predicted completion time of a **gather** — symmetric to [`scatter_time`]
/// under the pLogP model. Thin wrapper over [`Pattern::Gather`].
pub fn gather_time(plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
    Pattern::Gather.intra_time(plogp, size, per_rank)
}

/// Predicted completion time of an **all-to-all** personalised exchange of `m`
/// bytes per rank pair. Thin wrapper over [`Pattern::AllToAll`].
pub fn alltoall_time(plogp: &PLogP, size: u32, per_pair: MessageSize) -> Time {
    Pattern::AllToAll.intra_time(plogp, size, per_pair)
}

/// Predicted completion time of an **allgather** implemented as a ring. Thin
/// wrapper over [`Pattern::AllGather`].
pub fn allgather_time(plogp: &PLogP, size: u32, per_rank: MessageSize) -> Time {
    Pattern::AllGather.intra_time(plogp, size, per_rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> PLogP {
        PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6)
    }

    #[test]
    fn single_rank_patterns_are_free() {
        let p = lan();
        let m = MessageSize::from_kib(64);
        assert_eq!(scatter_time(&p, 1, m), Time::ZERO);
        assert_eq!(alltoall_time(&p, 1, m), Time::ZERO);
        assert_eq!(allgather_time(&p, 1, m), Time::ZERO);
        assert_eq!(gather_time(&p, 1, m), Time::ZERO);
    }

    #[test]
    fn scatter_is_cheaper_than_broadcasting_everything() {
        // Scattering P blocks of m/P bytes moves less data on the critical path
        // than broadcasting the full m bytes along a binomial tree.
        let p = lan();
        let size = 32u32;
        let total = MessageSize::from_mib(4);
        let per_rank = MessageSize::from_bytes(total.as_bytes() / u64::from(size));
        let scatter = scatter_time(&p, size, per_rank);
        let bcast = crate::algorithms::BroadcastAlgorithm::BinomialTree.predict(&p, size, total);
        assert!(scatter < bcast);
    }

    #[test]
    fn alltoall_grows_linearly_with_cluster_size() {
        let p = lan();
        let m = MessageSize::from_kib(256);
        let t8 = alltoall_time(&p, 8, m);
        let t16 = alltoall_time(&p, 16, m);
        let ratio = t16 / t8;
        assert!((ratio - 15.0 / 7.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn gather_matches_scatter() {
        let p = lan();
        let m = MessageSize::from_kib(32);
        assert_eq!(gather_time(&p, 20, m), scatter_time(&p, 20, m));
    }

    #[test]
    fn aggregate_bytes_are_direction_agnostic_across_duals() {
        // The byte count of a cluster's aggregate is the same whichever way
        // it travels — the *pricing direction* is the caller's job (see the
        // trait doc); these equalities are what make the time-reversed duals
        // exchange identical payloads.
        let m = MessageSize::from_kib(8);
        assert_eq!(
            Pattern::Scatter.aggregate_bytes(12, m),
            Pattern::Gather.aggregate_bytes(12, m)
        );
        assert_eq!(
            Pattern::AllGather.aggregate_bytes(12, m),
            Pattern::Gather.aggregate_bytes(12, m)
        );
    }

    #[test]
    fn scatter_critical_path_has_log_rounds_of_latency() {
        // With a zero-bandwidth-cost model the scatter cost is exactly
        // ⌈log₂ P⌉ · L.
        let p = PLogP::constant(Time::from_millis(1.0), Time::ZERO);
        let t = scatter_time(&p, 16, MessageSize::from_kib(1));
        assert_eq!(t, Time::from_millis(4.0));
    }

    #[test]
    fn aggregate_bytes_concatenate_per_rank_blocks() {
        let agg = Pattern::Scatter.aggregate_bytes(20, MessageSize::from_kib(64));
        assert_eq!(agg, MessageSize::from_kib(20 * 64));
        // Concatenating several clusters' aggregates is plain byte addition.
        let relay_payload = concat_blocks([
            Pattern::Scatter.aggregate_bytes(4, MessageSize::from_kib(16)),
            Pattern::Scatter.aggregate_bytes(1, MessageSize::from_kib(16)),
            MessageSize::ZERO,
        ]);
        assert_eq!(relay_payload, MessageSize::from_kib(5 * 16));
    }

    #[test]
    fn trait_object_dispatch_works() {
        let p = lan();
        let m = MessageSize::from_kib(8);
        let patterns: [&dyn PatternCost; 4] = [
            &Pattern::Scatter,
            &Pattern::Gather,
            &Pattern::AllToAll,
            &Pattern::AllGather,
        ];
        for pattern in patterns {
            assert!(!pattern.name().is_empty());
            assert!(pattern.intra_time(&p, 16, m) > Time::ZERO);
            assert_eq!(pattern.intra_time(&p, 1, m), Time::ZERO);
        }
    }
}
