//! Result containers and rendering (aligned text tables and CSV).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One data point of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// X coordinate (number of clusters, message size in bytes, ...).
    pub x: f64,
    /// Y coordinate (completion time in seconds, hit count, ...).
    pub y: f64,
}

/// A labelled series (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (heuristic name).
    pub label: String,
    /// Points in ascending `x` order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates a series from `(x, y)` pairs.
    pub fn new(label: impl Into<String>, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points: points
                .into_iter()
                .map(|(x, y)| SeriesPoint { x, y })
                .collect(),
        }
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.y).sum::<f64>() / self.points.len() as f64
    }
}

/// A reproduced figure or table: a set of series over a common x axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Title, e.g. "Figure 1: 1 MB broadcast, 2-10 clusters".
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The series (curves).
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureResult {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// A series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The sorted, deduplicated x values across all series.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders the figure as an aligned text table: one row per x value, one
    /// column per series — the same rows the paper's plots are drawn from.
    pub fn to_ascii_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let width = 14usize;
        let _ = write!(out, "{:>width$}", self.x_label, width = width);
        for s in &self.series {
            let _ = write!(out, "{:>width$}", s.label, width = width);
        }
        let _ = writeln!(out);
        for x in self.x_values() {
            let _ = write!(out, "{:>width$.3}", x, width = width);
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "{:>width$.4}", y, width = width);
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-", width = width);
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the figure as CSV (`x,label1,label2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(',', ";"));
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        let _ = writeln!(out);
        for x in self.x_values() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => {
                        let _ = write!(out, ",");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureResult {
        let mut fig = FigureResult::new("Test figure", "clusters", "completion (s)");
        fig.push(Series::new("Flat Tree", vec![(2.0, 1.0), (4.0, 2.0)]));
        fig.push(Series::new("ECEF", vec![(2.0, 0.9), (4.0, 1.1)]));
        fig
    }

    #[test]
    fn ascii_table_contains_all_series_and_rows() {
        let fig = sample_figure();
        let table = fig.to_ascii_table();
        assert!(table.contains("Test figure"));
        assert!(table.contains("Flat Tree"));
        assert!(table.contains("ECEF"));
        // Two x rows.
        assert_eq!(table.lines().count(), 3 + 2);
        assert!(table.contains("2.000"));
        assert!(table.contains("1.1000"));
    }

    #[test]
    fn csv_round_trips_the_points() {
        let fig = sample_figure();
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "clusters,Flat Tree,ECEF");
        assert_eq!(lines[1], "2,1,0.9");
        assert_eq!(lines[2], "4,2,1.1");
    }

    #[test]
    fn series_lookup_helpers() {
        let fig = sample_figure();
        assert_eq!(fig.x_values(), vec![2.0, 4.0]);
        let ecef = fig.series_by_label("ECEF").unwrap();
        assert_eq!(ecef.y_at(4.0), Some(1.1));
        assert_eq!(ecef.y_at(3.0), None);
        assert!((ecef.mean_y() - 1.0).abs() < 1e-9);
        assert!(fig.series_by_label("missing").is_none());
    }

    #[test]
    fn missing_points_render_as_dashes_and_empty_cells() {
        let mut fig = FigureResult::new("Partial", "x", "y");
        fig.push(Series::new("a", vec![(1.0, 1.0)]));
        fig.push(Series::new("b", vec![(2.0, 2.0)]));
        let table = fig.to_ascii_table();
        assert!(table.contains('-'));
        let csv = fig.to_csv();
        assert!(csv.lines().any(|l| l.ends_with(',')));
        let empty = Series::new("empty", Vec::<(f64, f64)>::new());
        assert_eq!(empty.mean_y(), 0.0);
    }
}
