//! The parallel Monte-Carlo runner behind Figures 1–4.
//!
//! Each iteration draws a fresh random grid from the Table 2 distributions,
//! builds the broadcast problem for a 1 MB message, schedules it with every
//! heuristic under study and records the makespans. Aggregated over the
//! iterations this yields the mean completion times (Figures 1–3) and the hit
//! rates against the per-iteration global minimum (Figure 4).
//!
//! Iterations are independent, so the runner splits them into contiguous
//! chunks across `std::thread::scope` threads. Every thread owns one
//! [`ScheduleEngine`] whose buffers are reused across its whole chunk — no
//! per-iteration `Vec` churn — and writes each iteration's makespans into a
//! dedicated slot of a shared results table. Because iteration `i` derives its
//! RNG from `seed + i` and the final aggregation walks the table sequentially
//! in iteration order, the outcome is **bit-identical regardless of the thread
//! count** (floating-point summation order never changes).

use crate::params::ExperimentConfig;
use gridcast_core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
use gridcast_plogp::Time;
use gridcast_topology::{ClusterId, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Aggregated results of a Monte-Carlo sweep for one cluster count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOutcome {
    /// Number of clusters of every generated grid.
    pub num_clusters: usize,
    /// Number of iterations aggregated.
    pub iterations: usize,
    /// Heuristics evaluated, in input order.
    pub heuristics: Vec<HeuristicKind>,
    /// Mean makespan per heuristic (same order as `heuristics`).
    pub mean_makespan: Vec<Time>,
    /// Number of iterations in which each heuristic matched the global minimum
    /// (the best makespan among all evaluated heuristics for that iteration).
    pub hits: Vec<usize>,
    /// Mean of the per-iteration global minimum — a lower envelope of the curves.
    pub mean_global_minimum: Time,
}

impl MonteCarloOutcome {
    /// Mean makespan of one heuristic.
    pub fn mean_of(&self, kind: HeuristicKind) -> Option<Time> {
        self.heuristics
            .iter()
            .position(|&k| k == kind)
            .map(|i| self.mean_makespan[i])
    }

    /// Hit count of one heuristic.
    pub fn hits_of(&self, kind: HeuristicKind) -> Option<usize> {
        self.heuristics
            .iter()
            .position(|&k| k == kind)
            .map(|i| self.hits[i])
    }

    /// Hit rate (fraction of iterations) of one heuristic.
    pub fn hit_rate_of(&self, kind: HeuristicKind) -> Option<f64> {
        self.hits_of(kind)
            .map(|h| h as f64 / self.iterations as f64)
    }
}

/// Relative tolerance under which two makespans count as "equal" for the hit
/// rate: different heuristics frequently construct the exact same schedule, and
/// floating-point noise must not break the tie.
const HIT_RELATIVE_TOLERANCE: f64 = 1e-9;

/// One worker thread's state: a reusable engine plus the slice of the results
/// table covering its iteration chunk.
fn run_chunk(
    first_iteration: usize,
    num_clusters: usize,
    kinds: &[HeuristicKind],
    config: &ExperimentConfig,
    rows: &mut [f64],
) {
    let k = kinds.len();
    let mut engine = ScheduleEngine::new();
    let mut spans: Vec<Time> = Vec::with_capacity(k);
    for (offset, row) in rows.chunks_mut(k).enumerate() {
        let iteration = first_iteration + offset;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(iteration as u64));
        let generator =
            GridGenerator::with_ranges(config.ranges.clone()).cluster_size(config.cluster_size);
        let grid = generator.generate(num_clusters, &mut rng);
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), config.message);
        engine.makespans_into(&problem, kinds, &mut spans);
        for (cell, span) in row.iter_mut().zip(&spans) {
            *cell = span.as_secs();
        }
    }
}

/// Runs the Monte-Carlo sweep for one cluster count.
pub fn run_monte_carlo(
    num_clusters: usize,
    kinds: &[HeuristicKind],
    config: &ExperimentConfig,
) -> MonteCarloOutcome {
    assert!(num_clusters >= 2, "a broadcast needs at least two clusters");
    assert!(
        !kinds.is_empty(),
        "at least one heuristic must be evaluated"
    );

    let iterations = config.iterations;
    let k = kinds.len();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(iterations.max(1));

    // One row of `k` makespans per iteration; threads fill disjoint chunks.
    let mut table = vec![0.0f64; iterations * k];
    let rows_per_thread = iterations.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in table.chunks_mut(rows_per_thread * k).enumerate() {
            let first_iteration = chunk_idx * rows_per_thread;
            scope.spawn(move || {
                run_chunk(first_iteration, num_clusters, kinds, config, chunk);
            });
        }
    });

    // Sequential aggregation in iteration order: the summation order — and
    // therefore the floating-point result — is independent of `threads`.
    let mut sum_makespan = vec![0.0f64; k];
    let mut hits = vec![0usize; k];
    let mut sum_global_min = 0.0f64;
    for row in table.chunks(k) {
        let global_min = row.iter().copied().fold(f64::INFINITY, f64::min);
        for (i, &span) in row.iter().enumerate() {
            sum_makespan[i] += span;
            if span <= global_min * (1.0 + HIT_RELATIVE_TOLERANCE) {
                hits[i] += 1;
            }
        }
        sum_global_min += global_min;
    }

    let divisor = iterations.max(1) as f64;
    MonteCarloOutcome {
        num_clusters,
        iterations,
        heuristics: kinds.to_vec(),
        mean_makespan: sum_makespan
            .iter()
            .map(|&s| Time::from_secs(s / divisor))
            .collect(),
        hits,
        mean_global_minimum: Time::from_secs(sum_global_min / divisor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick().with_iterations(150)
    }

    #[test]
    fn outcome_is_deterministic_for_a_given_seed() {
        let kinds = HeuristicKind::all();
        let a = run_monte_carlo(5, &kinds, &quick());
        let b = run_monte_carlo(5, &kinds, &quick());
        assert_eq!(a, b);
        let different_seed = ExperimentConfig { seed: 1, ..quick() };
        let c = run_monte_carlo(5, &kinds, &different_seed);
        assert_ne!(a.mean_makespan, c.mean_makespan);
    }

    #[test]
    fn outcome_is_bit_identical_across_chunkings() {
        // The public entry point adapts to the machine's parallelism; driving
        // `run_chunk` directly with different chunk splits must reproduce the
        // exact same table a single chunk produces.
        let kinds = HeuristicKind::all();
        let config = quick().with_iterations(24);
        let k = kinds.len();
        let mut whole = vec![0.0f64; 24 * k];
        run_chunk(0, 5, &kinds, &config, &mut whole);
        for split in [1usize, 2, 3, 5, 8] {
            let mut table = vec![0.0f64; 24 * k];
            let rows_per_chunk = 24usize.div_ceil(split);
            for (chunk_idx, chunk) in table.chunks_mut(rows_per_chunk * k).enumerate() {
                run_chunk(chunk_idx * rows_per_chunk, 5, &kinds, &config, chunk);
            }
            assert!(
                table
                    .iter()
                    .zip(&whole)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "split into {split} chunks changed the results"
            );
        }
    }

    #[test]
    fn every_iteration_contributes() {
        let kinds = [HeuristicKind::Ecef, HeuristicKind::FlatTree];
        let outcome = run_monte_carlo(4, &kinds, &quick());
        assert_eq!(outcome.iterations, 150);
        assert_eq!(outcome.heuristics.len(), 2);
        // Every iteration has at least one hit (the minimum itself), so the hit
        // counts sum to at least the iteration count.
        assert!(outcome.hits.iter().sum::<usize>() >= outcome.iterations);
    }

    #[test]
    fn flat_tree_is_worst_and_global_minimum_is_a_lower_envelope() {
        let kinds = HeuristicKind::all();
        let outcome = run_monte_carlo(8, &kinds, &quick());
        let flat = outcome.mean_of(HeuristicKind::FlatTree).unwrap();
        for kind in HeuristicKind::ecef_family() {
            let mean = outcome.mean_of(kind).unwrap();
            assert!(mean < flat, "{kind} mean {mean} vs flat {flat}");
            assert!(mean >= outcome.mean_global_minimum);
        }
        // Hit rates are within [0, 1].
        for kind in kinds {
            let rate = outcome.hit_rate_of(kind).unwrap();
            assert!((0.0..=1.0).contains(&rate), "{kind}: {rate}");
        }
        assert!(outcome.mean_of(HeuristicKind::BottomUp).is_some());
        assert!(outcome
            .mean_of(HeuristicKind::Fef)
            .unwrap()
            .as_secs()
            .is_finite());
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn single_cluster_sweep_is_rejected() {
        let _ = run_monte_carlo(1, &HeuristicKind::all(), &quick());
    }
}
