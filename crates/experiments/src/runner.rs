//! The parallel Monte-Carlo runner behind Figures 1–4.
//!
//! Each iteration draws a fresh random grid from the Table 2 distributions,
//! builds the broadcast problem for a 1 MB message, schedules it with every
//! heuristic under study and records the makespans. Aggregated over the
//! iterations this yields the mean completion times (Figures 1–3) and the hit
//! rates against the per-iteration global minimum (Figure 4).
//!
//! Iterations are independent, so the runner splits them across threads with
//! `crossbeam::scope`; each iteration derives its own RNG from `seed + index`,
//! making the result identical regardless of the thread count.

use crate::params::ExperimentConfig;
use gridcast_core::{BroadcastProblem, HeuristicKind};
use gridcast_plogp::Time;
use gridcast_topology::{ClusterId, GridGenerator};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Aggregated results of a Monte-Carlo sweep for one cluster count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOutcome {
    /// Number of clusters of every generated grid.
    pub num_clusters: usize,
    /// Number of iterations aggregated.
    pub iterations: usize,
    /// Heuristics evaluated, in input order.
    pub heuristics: Vec<HeuristicKind>,
    /// Mean makespan per heuristic (same order as `heuristics`).
    pub mean_makespan: Vec<Time>,
    /// Number of iterations in which each heuristic matched the global minimum
    /// (the best makespan among all evaluated heuristics for that iteration).
    pub hits: Vec<usize>,
    /// Mean of the per-iteration global minimum — a lower envelope of the curves.
    pub mean_global_minimum: Time,
}

impl MonteCarloOutcome {
    /// Mean makespan of one heuristic.
    pub fn mean_of(&self, kind: HeuristicKind) -> Option<Time> {
        self.heuristics
            .iter()
            .position(|&k| k == kind)
            .map(|i| self.mean_makespan[i])
    }

    /// Hit count of one heuristic.
    pub fn hits_of(&self, kind: HeuristicKind) -> Option<usize> {
        self.heuristics
            .iter()
            .position(|&k| k == kind)
            .map(|i| self.hits[i])
    }

    /// Hit rate (fraction of iterations) of one heuristic.
    pub fn hit_rate_of(&self, kind: HeuristicKind) -> Option<f64> {
        self.hits_of(kind)
            .map(|h| h as f64 / self.iterations as f64)
    }
}

/// Per-thread accumulator merged at the end of the sweep.
#[derive(Debug, Clone)]
struct Partial {
    sum_makespan: Vec<f64>,
    hits: Vec<usize>,
    sum_global_min: f64,
    iterations: usize,
}

impl Partial {
    fn new(k: usize) -> Self {
        Partial {
            sum_makespan: vec![0.0; k],
            hits: vec![0; k],
            sum_global_min: 0.0,
            iterations: 0,
        }
    }

    fn merge(&mut self, other: &Partial) {
        for (a, b) in self.sum_makespan.iter_mut().zip(&other.sum_makespan) {
            *a += b;
        }
        for (a, b) in self.hits.iter_mut().zip(&other.hits) {
            *a += b;
        }
        self.sum_global_min += other.sum_global_min;
        self.iterations += other.iterations;
    }
}

/// Relative tolerance under which two makespans count as "equal" for the hit
/// rate: different heuristics frequently construct the exact same schedule, and
/// floating-point noise must not break the tie.
const HIT_RELATIVE_TOLERANCE: f64 = 1e-9;

fn run_iteration(
    iteration: usize,
    num_clusters: usize,
    kinds: &[HeuristicKind],
    config: &ExperimentConfig,
    partial: &mut Partial,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(iteration as u64));
    let generator = GridGenerator::with_ranges(config.ranges.clone()).cluster_size(config.cluster_size);
    let grid = generator.generate(num_clusters, &mut rng);
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), config.message);

    let makespans: Vec<f64> = kinds
        .iter()
        .map(|kind| kind.schedule(&problem).makespan().as_secs())
        .collect();
    let global_min = makespans
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);

    for (i, &span) in makespans.iter().enumerate() {
        partial.sum_makespan[i] += span;
        if span <= global_min * (1.0 + HIT_RELATIVE_TOLERANCE) {
            partial.hits[i] += 1;
        }
    }
    partial.sum_global_min += global_min;
    partial.iterations += 1;
}

/// Runs the Monte-Carlo sweep for one cluster count.
pub fn run_monte_carlo(
    num_clusters: usize,
    kinds: &[HeuristicKind],
    config: &ExperimentConfig,
) -> MonteCarloOutcome {
    assert!(num_clusters >= 2, "a broadcast needs at least two clusters");
    assert!(!kinds.is_empty(), "at least one heuristic must be evaluated");

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(config.iterations.max(1));
    let merged = Mutex::new(Partial::new(kinds.len()));

    crossbeam::scope(|scope| {
        for thread_id in 0..threads {
            let merged = &merged;
            scope.spawn(move |_| {
                let mut partial = Partial::new(kinds.len());
                let mut iteration = thread_id;
                while iteration < config.iterations {
                    run_iteration(iteration, num_clusters, kinds, config, &mut partial);
                    iteration += threads;
                }
                merged.lock().merge(&partial);
            });
        }
    })
    .expect("monte-carlo worker panicked");

    let partial = merged.into_inner();
    let iterations = partial.iterations.max(1);
    MonteCarloOutcome {
        num_clusters,
        iterations: partial.iterations,
        heuristics: kinds.to_vec(),
        mean_makespan: partial
            .sum_makespan
            .iter()
            .map(|&s| Time::from_secs(s / iterations as f64))
            .collect(),
        hits: partial.hits,
        mean_global_minimum: Time::from_secs(partial.sum_global_min / iterations as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick().with_iterations(150)
    }

    #[test]
    fn outcome_is_deterministic_for_a_given_seed() {
        let kinds = HeuristicKind::all();
        let a = run_monte_carlo(5, &kinds, &quick());
        let b = run_monte_carlo(5, &kinds, &quick());
        assert_eq!(a, b);
        let different_seed = ExperimentConfig {
            seed: 1,
            ..quick()
        };
        let c = run_monte_carlo(5, &kinds, &different_seed);
        assert_ne!(a.mean_makespan, c.mean_makespan);
    }

    #[test]
    fn every_iteration_contributes() {
        let kinds = [HeuristicKind::Ecef, HeuristicKind::FlatTree];
        let outcome = run_monte_carlo(4, &kinds, &quick());
        assert_eq!(outcome.iterations, 150);
        assert_eq!(outcome.heuristics.len(), 2);
        // Every iteration has at least one hit (the minimum itself), so the hit
        // counts sum to at least the iteration count.
        assert!(outcome.hits.iter().sum::<usize>() >= outcome.iterations);
    }

    #[test]
    fn flat_tree_is_worst_and_global_minimum_is_a_lower_envelope() {
        let kinds = HeuristicKind::all();
        let outcome = run_monte_carlo(8, &kinds, &quick());
        let flat = outcome.mean_of(HeuristicKind::FlatTree).unwrap();
        for kind in HeuristicKind::ecef_family() {
            let mean = outcome.mean_of(kind).unwrap();
            assert!(mean < flat, "{kind} mean {mean} vs flat {flat}");
            assert!(mean >= outcome.mean_global_minimum);
        }
        // Hit rates are within [0, 1].
        for kind in kinds {
            let rate = outcome.hit_rate_of(kind).unwrap();
            assert!((0.0..=1.0).contains(&rate), "{kind}: {rate}");
        }
        assert!(outcome.mean_of(HeuristicKind::BottomUp).is_some());
        assert!(outcome
            .mean_of(HeuristicKind::Fef)
            .unwrap()
            .as_secs()
            .is_finite());
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn single_cluster_sweep_is_rejected() {
        let _ = run_monte_carlo(1, &HeuristicKind::all(), &quick());
    }
}
