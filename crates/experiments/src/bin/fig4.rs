//! Regenerates Figure 4 (hit rate). Usage: `fig4 [--iterations N]` (default 2000).

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::default().with_iterations_from_args(&args);
    let figure = figures::fig4::run(&config);
    print!("{}", figure.to_ascii_table());
    eprintln!();
    eprint!("{}", figure.to_csv());
}
