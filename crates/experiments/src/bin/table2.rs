//! Regenerates Table 2 (simulation parameter ranges).

fn main() {
    print!("{}", gridcast_experiments::tables::table2());
}
