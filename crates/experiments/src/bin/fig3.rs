//! Regenerates Figure 3. Usage: `fig3 [--iterations N]` (default 2000).

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::default().with_iterations_from_args(&args);
    let figure = figures::fig3::run(&config);
    print!("{}", figure.to_ascii_table());
    eprintln!();
    eprint!("{}", figure.to_csv());
}
