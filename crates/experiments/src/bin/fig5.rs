//! Regenerates Figure 5 (predicted times, 88-machine grid).

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let figure = figures::fig5::run(&ExperimentConfig::default());
    print!("{}", figure.to_ascii_table());
    eprintln!();
    eprint!("{}", figure.to_csv());
}
