//! Runs every table and figure of the paper in sequence and prints the results.
//!
//! Usage: `all_experiments [--iterations N]` — N defaults to 2000; the paper
//! uses 10000 (`--iterations 10000` reproduces it exactly, at ~5x the runtime).

use gridcast_experiments::{figures, tables, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::default().with_iterations_from_args(&args);

    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());

    for (name, figure) in [
        ("fig1", figures::fig1::run(&config)),
        ("fig2", figures::fig2::run(&config)),
        ("fig3", figures::fig3::run(&config)),
        ("fig4", figures::fig4::run(&config)),
        ("fig5", figures::fig5::run(&config)),
        ("fig6", figures::fig6::run(&config)),
        ("mixed", figures::mixed::run(&config)),
        ("patterns-scatter", figures::patterns::run(&config)),
        (
            "patterns-alltoall",
            figures::patterns::run_alltoall(&config),
        ),
        ("gather", figures::gather::run(&config)),
        ("exchange-scaling", figures::gather::run_exchange(&config)),
        ("whatif", figures::whatif::run(&config)),
        ("faults", figures::faults::run(&config)),
    ] {
        println!("== {name} ==");
        println!("{}", figure.to_ascii_table());
    }
}
