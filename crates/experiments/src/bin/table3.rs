//! Regenerates Table 3 (GRID'5000 latency matrix and logical clusters).

fn main() {
    print!("{}", gridcast_experiments::tables::table3());
}
