//! Regenerates the gather/exchange-scheduler comparison: the relay-capable
//! gather policies against the scatter dual on the GRID'5000 Table-3 grid
//! (the curves coincide — the time-reversal duality made visible), and the
//! lazy-invalidation exchange scheduler against the retained O(T²) oracle.

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::default();
    let gather = figures::gather::run(&config);
    print!("{}", gather.to_ascii_table());
    eprintln!();
    eprint!("{}", gather.to_csv());
    let exchange = figures::gather::run_exchange(&config);
    print!("{}", exchange.to_ascii_table());
    eprintln!();
    eprint!("{}", exchange.to_csv());
}
