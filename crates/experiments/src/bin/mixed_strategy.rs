//! Evaluates the Section 6 mixed strategy. Usage: `mixed_strategy [--iterations N]`.

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::default().with_iterations_from_args(&args);
    let figure = figures::mixed::run(&config);
    print!("{}", figure.to_ascii_table());
}
