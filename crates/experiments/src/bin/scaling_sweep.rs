//! Regenerates the grid-scale sweep (50–1000 clusters, all seven heuristics).
//! Usage: `scaling_sweep [--iterations N]` — N is the classic sweeps' budget;
//! the scaling sweep derives its own reduced per-point iteration count from it
//! (default 2000 → 8 instances per cluster count).

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::default().with_iterations_from_args(&args);
    let figure = figures::scaling::run(&config);
    print!("{}", figure.to_ascii_table());
    eprintln!();
    eprint!("{}", figure.to_csv());
}
