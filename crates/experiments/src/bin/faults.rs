//! Regenerates the storm sweep: every heuristic's Table-3 schedule executed
//! on the node-level discrete-event core under seeded message loss with
//! ack/retry/timeout transport, mean completion per loss rate, plus the
//! per-rate winner — the scan that shows where (and whether) the calm grid's
//! best heuristic loses its crown in the storm.

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::default();
    let figure = figures::faults::run(&config);
    print!("{}", figure.to_ascii_table());
    println!();
    println!("winner per loss rate:");
    for (loss, label) in figures::faults::ranking(&figure) {
        println!("  p = {loss:<5} -> {label}");
    }
    eprintln!();
    eprint!("{}", figure.to_csv());
}
