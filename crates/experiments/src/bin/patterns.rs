//! Regenerates the "patterns beyond broadcast" comparison: scatter (direct vs
//! relay-capable) and all-to-all (lower bound vs engine schedule) on the
//! GRID'5000 Table-3 grid.

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::default();
    let scatter = figures::patterns::run(&config);
    print!("{}", scatter.to_ascii_table());
    eprintln!();
    eprint!("{}", scatter.to_csv());
    let alltoall = figures::patterns::run_alltoall(&config);
    print!("{}", alltoall.to_ascii_table());
    eprintln!();
    eprint!("{}", alltoall.to_csv());
}
