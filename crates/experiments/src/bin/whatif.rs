//! Regenerates the what-if degradation sweep: the GRID'5000 Table-3 grid with
//! the root cluster's uplink gap scaled by growing factors, every heuristic
//! re-predicted per factor by the concurrent what-if runner, plus the winning
//! schedule's predicted and node-level simulated completion. The crossover —
//! the healthy grid's winner degrading past the relaying strategies — is the
//! case for predicting per instance instead of fixing one strategy offline.

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::default();
    let figure = figures::whatif::run(&config);
    print!("{}", figure.to_ascii_table());
    eprintln!();
    eprint!("{}", figure.to_csv());
}
