//! Regenerates Figure 6 (measured times, 88-machine grid, incl. Default LAM).

use gridcast_experiments::{figures, ExperimentConfig};

fn main() {
    let figure = figures::fig6::run(&ExperimentConfig::default());
    print!("{}", figure.to_ascii_table());
    eprintln!();
    eprint!("{}", figure.to_csv());
}
