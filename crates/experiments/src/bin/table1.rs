//! Regenerates Table 1 (communication levels).

fn main() {
    print!("{}", gridcast_experiments::tables::table1());
}
