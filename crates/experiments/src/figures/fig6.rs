//! Figure 6: measured (simulated execution) broadcast times on the 88-machine
//! GRID'5000 grid, including the grid-unaware "Default LAM" binomial baseline.

use crate::figures::fig5::{heuristics, message_sizes};
use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_plogp::MessageSize;
use gridcast_simulator::Simulator;
use gridcast_topology::{grid5000_table3, ClusterId};

/// Reproduces Figure 6: every heuristic is scheduled (its scheduling wall-clock
/// cost is charged as start-up overhead) and then *executed* by the
/// discrete-event simulator; the grid-unaware binomial tree over all 88 ranks is
/// included as the "Default LAM" series.
pub fn run(_config: &ExperimentConfig) -> FigureResult {
    let grid = grid5000_table3();
    let root = ClusterId(0);
    let mut figure = FigureResult::new(
        "Figure 6: measured completion time for a broadcast in an 88-machine grid",
        "message size (bytes)",
        "completion time (s)",
    );

    // Default LAM: stock MPI binomial over all ranks.
    let lam_points: Vec<(f64, f64)> = message_sizes()
        .into_iter()
        .map(|m| {
            let sim = Simulator::new(&grid, m);
            (m.as_f64(), sim.run_default_mpi(root).completion.as_secs())
        })
        .collect();
    figure.push(Series::new("Default LAM", lam_points));

    for kind in heuristics() {
        let points: Vec<(f64, f64)> = message_sizes()
            .into_iter()
            .map(|m| {
                let sim = Simulator::new(&grid, m);
                let (_, outcome) = sim.run_heuristic(kind, root);
                (m.as_f64(), outcome.completion.as_secs())
            })
            .collect();
        figure.push(Series::new(kind.name(), points));
    }
    figure
}

/// Convenience: the measured-vs-predicted relative error per heuristic at one
/// message size, used by EXPERIMENTS.md and the ablation benches to quantify the
/// paper's "predictions fit with a good precision the practical results" claim.
pub fn prediction_error_at(m: MessageSize) -> Vec<(String, f64)> {
    let grid = grid5000_table3();
    let root = ClusterId(0);
    let sim = Simulator::new(&grid, m);
    heuristics()
        .into_iter()
        .map(|kind| {
            let predicted = sim.predict_heuristic(kind, root).as_secs();
            let measured = sim.run_heuristic(kind, root).1.completion.as_secs();
            let rel = if measured > 0.0 {
                (predicted - measured).abs() / measured
            } else {
                0.0
            };
            (kind.name().to_string(), rel)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ordering_matches_the_paper() {
        let fig = run(&ExperimentConfig::quick());
        // 7 heuristics + the Default LAM baseline.
        assert_eq!(fig.series.len(), 8);
        let four_mb = 4_000_000.0;
        let at = |label: &str| fig.series_by_label(label).unwrap().y_at(four_mb).unwrap();

        let flat = at("Flat Tree");
        let lam = at("Default LAM");
        let ecef_la = at("ECEF-LA");
        let ecef_lat = at("ECEF-LAT");

        // Paper, Section 7: ECEF-like heuristics below 3 s for 4 MB; the flat
        // tree several times slower and even worse than the grid-unaware
        // binomial tree.
        assert!(ecef_la < 3.5, "ECEF-LA measured {ecef_la}");
        assert!(ecef_lat < 3.5, "ECEF-LAT measured {ecef_lat}");
        assert!(lam < flat, "Default LAM {lam} should beat Flat Tree {flat}");
        assert!(
            ecef_la < lam,
            "ECEF-LA {ecef_la} should beat Default LAM {lam}"
        );
        assert!(
            flat > 3.0 * ecef_la,
            "Flat Tree {flat} should be several times ECEF-LA {ecef_la}"
        );
    }

    #[test]
    fn predictions_fit_measurements_reasonably() {
        // The paper observes a good fit between Figures 5 and 6; our substitute
        // testbed executes binomial intra-cluster trees while the prediction
        // uses the best algorithm per cluster, so we accept a wider band.
        for (name, rel) in prediction_error_at(MessageSize::from_mib(1)) {
            assert!(
                rel < 0.5,
                "{name}: predicted and measured diverge by {:.0} %",
                rel * 100.0
            );
        }
    }
}
