//! Figure 1: mean completion time of a 1 MB broadcast for 2–10 clusters.

use crate::figures::completion_sweep;
use crate::params::ExperimentConfig;
use crate::report::FigureResult;
use gridcast_core::HeuristicKind;

/// Cluster counts swept by Figure 1 (the size of today's typical grids — the
/// GRID'5000 project interconnected 10 clusters at the time of the paper).
pub const CLUSTER_COUNTS: [usize; 9] = [2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Reproduces Figure 1: all seven heuristics, 2–10 clusters.
pub fn run(config: &ExperimentConfig) -> FigureResult {
    completion_sweep(
        "Figure 1: 1 MB broadcast in a grid with a reduced number of clusters",
        &CLUSTER_COUNTS,
        &HeuristicKind::all(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_qualitative_shape_of_figure1() {
        let config = ExperimentConfig::quick().with_iterations(300);
        let fig = run(&config);
        assert_eq!(fig.series.len(), 7);
        assert_eq!(fig.x_values().len(), CLUSTER_COUNTS.len());

        let flat = fig.series_by_label("Flat Tree").unwrap();
        let fef = fig.series_by_label("FEF").unwrap();
        let ecef = fig.series_by_label("ECEF").unwrap();
        let bottom_up = fig.series_by_label("BottomUp").unwrap();

        // At 10 clusters the paper's ordering is: Flat Tree worst, then FEF,
        // with BottomUp between FEF and the ECEF family.
        let at = |s: &crate::report::Series| s.y_at(10.0).unwrap();
        assert!(at(flat) > at(fef), "flat {} vs fef {}", at(flat), at(fef));
        assert!(at(fef) > at(bottom_up));
        assert!(at(bottom_up) > at(ecef));

        // Completion times are in the seconds range (the paper's y axis spans
        // roughly 2–5.5 s over this cluster range).
        assert!(at(ecef) > 0.5 && at(ecef) < 10.0);

        // The flat tree grows steeply with the cluster count while ECEF stays
        // nearly flat. The 2.5x margin leaves headroom for the exact sample
        // values drawn from the generator's stream at 300 iterations.
        let flat_growth = flat.y_at(10.0).unwrap() - flat.y_at(2.0).unwrap();
        let ecef_growth = ecef.y_at(10.0).unwrap() - ecef.y_at(2.0).unwrap();
        assert!(flat_growth > 2.5 * ecef_growth.max(0.01));
    }
}
