//! Reproduction of the paper's figures.

pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod gather;
pub mod mixed;
pub mod patterns;
pub mod scaling;
pub mod whatif;

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use crate::runner::run_monte_carlo;
use gridcast_core::HeuristicKind;

/// Shared engine of Figures 1–3: for every cluster count in `cluster_counts`,
/// run the Monte-Carlo sweep and report the mean completion time (seconds) of
/// every heuristic in `kinds`.
pub fn completion_sweep(
    title: &str,
    cluster_counts: &[usize],
    kinds: &[HeuristicKind],
    config: &ExperimentConfig,
) -> FigureResult {
    let mut per_kind: Vec<Vec<(f64, f64)>> = vec![Vec::new(); kinds.len()];
    for &clusters in cluster_counts {
        let outcome = run_monte_carlo(clusters, kinds, config);
        for (i, mean) in outcome.mean_makespan.iter().enumerate() {
            per_kind[i].push((clusters as f64, mean.as_secs()));
        }
    }
    let mut figure = FigureResult::new(title, "clusters", "completion time (s)");
    for (kind, points) in kinds.iter().zip(per_kind) {
        figure.push(Series::new(kind.name(), points));
    }
    figure
}

/// Shared engine of Figure 4: hit counts against the per-iteration global
/// minimum. `hit_reference` lists the heuristics whose minimum defines the
/// reference (the paper computes the global minimum over all evaluated
/// techniques); `plotted` lists the heuristics whose hit counts are reported.
pub fn hit_rate_sweep(
    title: &str,
    cluster_counts: &[usize],
    hit_reference: &[HeuristicKind],
    plotted: &[HeuristicKind],
    config: &ExperimentConfig,
) -> FigureResult {
    let mut per_kind: Vec<Vec<(f64, f64)>> = vec![Vec::new(); plotted.len()];
    for &clusters in cluster_counts {
        let outcome = run_monte_carlo(clusters, hit_reference, config);
        for (i, &kind) in plotted.iter().enumerate() {
            let hits = outcome.hits_of(kind).unwrap_or(0);
            per_kind[i].push((clusters as f64, hits as f64));
        }
    }
    let mut figure = FigureResult::new(
        title,
        "clusters",
        format!("hits out of {} iterations", config.iterations),
    );
    for (kind, points) in plotted.iter().zip(per_kind) {
        figure.push(Series::new(kind.name(), points));
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_sweep_produces_one_series_per_heuristic() {
        let config = ExperimentConfig::quick().with_iterations(40);
        let kinds = [HeuristicKind::FlatTree, HeuristicKind::Ecef];
        let fig = completion_sweep("test", &[2, 4], &kinds, &config);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.x_values(), vec![2.0, 4.0]);
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
            assert!(series.points.iter().all(|p| p.y > 0.0));
        }
    }

    #[test]
    fn hit_rate_sweep_counts_are_bounded_by_iterations() {
        let config = ExperimentConfig::quick().with_iterations(60);
        let fig = hit_rate_sweep(
            "test hits",
            &[3, 5],
            &HeuristicKind::all(),
            &HeuristicKind::ecef_family(),
            &config,
        );
        assert_eq!(fig.series.len(), 4);
        for series in &fig.series {
            for point in &series.points {
                assert!(point.y >= 0.0 && point.y <= 60.0);
            }
        }
    }
}
