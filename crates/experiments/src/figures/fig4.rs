//! Figure 4: hit rate of the ECEF-like heuristics against the global minimum.

use crate::figures::hit_rate_sweep;
use crate::params::ExperimentConfig;
use crate::report::FigureResult;
use gridcast_core::HeuristicKind;

/// Cluster counts swept by Figure 4 (same axis as Figures 2 and 3).
pub const CLUSTER_COUNTS: [usize; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Reproduces Figure 4: for every cluster count, how many of the iterations each
/// ECEF-like heuristic matched the global minimum (the best makespan found by
/// any of the four techniques in that iteration, as in the paper).
pub fn run(config: &ExperimentConfig) -> FigureResult {
    hit_rate_sweep(
        "Figure 4: hit rate of the ECEF-like heuristics",
        &CLUSTER_COUNTS,
        &HeuristicKind::ecef_family(),
        &HeuristicKind::ecef_family(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_oriented_heuristics_lose_hits_as_grids_grow() {
        let iterations = 250;
        let config = ExperimentConfig::quick().with_iterations(iterations);
        let fig = hit_rate_sweep(
            "fig4-test",
            &[5, 50],
            &HeuristicKind::ecef_family(),
            &HeuristicKind::ecef_family(),
            &config,
        );
        let ecef = fig.series_by_label("ECEF").unwrap();
        let ecef_la = fig.series_by_label("ECEF-LA").unwrap();

        // The paper's observation: ECEF and ECEF-LA match the global minimum
        // less often at 50 clusters than at 5.
        assert!(ecef.y_at(50.0).unwrap() < ecef.y_at(5.0).unwrap());
        assert!(ecef_la.y_at(50.0).unwrap() < ecef_la.y_at(5.0).unwrap());

        // Hit counts stay within [0, iterations] and every cluster count has at
        // least one heuristic hitting (the minimum is achieved by someone).
        for &x in &[5.0, 50.0] {
            let total: f64 = fig.series.iter().map(|s| s.y_at(x).unwrap()).sum();
            assert!(total >= iterations as f64);
            for s in &fig.series {
                let y = s.y_at(x).unwrap();
                assert!(y >= 0.0 && y <= iterations as f64);
            }
        }
    }
}
