//! Figure 5: model-predicted broadcast times on the 88-machine GRID'5000 grid.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_core::HeuristicKind;
use gridcast_plogp::MessageSize;
use gridcast_simulator::Simulator;
use gridcast_topology::{grid5000_table3, ClusterId};

/// Message sizes swept by Figures 5 and 6 (bytes): 0 to 4.5 MB, matching the
/// paper's x axis.
pub fn message_sizes() -> Vec<MessageSize> {
    (0..=9)
        .map(|i| MessageSize::from_bytes(i * 500_000))
        .collect()
}

/// The heuristics plotted in Figures 5 and 6.
pub fn heuristics() -> [HeuristicKind; 7] {
    HeuristicKind::all()
}

/// Reproduces Figure 5: for every message size and heuristic, the completion
/// time *predicted* by the pLogP-based makespan model (no execution).
pub fn run(_config: &ExperimentConfig) -> FigureResult {
    let grid = grid5000_table3();
    let root = ClusterId(0);
    let mut figure = FigureResult::new(
        "Figure 5: predicted performance for a broadcast in an 88-machine grid",
        "message size (bytes)",
        "completion time (s)",
    );
    for kind in heuristics() {
        let points: Vec<(f64, f64)> = message_sizes()
            .into_iter()
            .map(|m| {
                let sim = Simulator::new(&grid, m);
                (m.as_f64(), sim.predict_heuristic(kind, root).as_secs())
            })
            .collect();
        figure.push(Series::new(kind.name(), points));
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_grow_with_message_size_and_flat_tree_is_worst() {
        let fig = run(&ExperimentConfig::quick());
        assert_eq!(fig.series.len(), 7);
        let flat = fig.series_by_label("Flat Tree").unwrap();
        let ecef_la = fig.series_by_label("ECEF-LA").unwrap();
        let four_mb = 4_000_000.0;

        // Monotone growth with message size for every heuristic.
        for series in &fig.series {
            let ys: Vec<f64> = series.points.iter().map(|p| p.y).collect();
            for w in ys.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{} not monotone: {ys:?}", series.label);
            }
        }

        // Paper: ECEF-like techniques finish a 4 MB broadcast in ~3 s, the flat
        // tree needs several times longer.
        let ecef_at_4mb = ecef_la.y_at(four_mb).unwrap();
        let flat_at_4mb = flat.y_at(four_mb).unwrap();
        assert!(ecef_at_4mb < 4.0, "ECEF-LA predicted {ecef_at_4mb}");
        assert!(
            flat_at_4mb > 2.0 * ecef_at_4mb,
            "Flat {flat_at_4mb} should be a multiple of ECEF-LA {ecef_at_4mb}"
        );
    }

    #[test]
    fn sweep_covers_the_paper_x_axis() {
        let sizes = message_sizes();
        assert_eq!(sizes.first().unwrap().as_bytes(), 0);
        assert_eq!(sizes.last().unwrap().as_bytes(), 4_500_000);
        assert_eq!(sizes.len(), 10);
    }
}
