//! Figure 2: mean completion time for grids of up to 50 clusters.

use crate::figures::completion_sweep;
use crate::params::ExperimentConfig;
use crate::report::FigureResult;
use gridcast_core::HeuristicKind;

/// Cluster counts swept by Figure 2.
pub const CLUSTER_COUNTS: [usize; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Reproduces Figure 2: all seven heuristics, 5–50 clusters.
pub fn run(config: &ExperimentConfig) -> FigureResult {
    completion_sweep(
        "Figure 2: 1 MB broadcast in a grid with up to 50 clusters",
        &CLUSTER_COUNTS,
        &HeuristicKind::all(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_tree_diverges_while_ecef_family_stays_flat() {
        let config = ExperimentConfig::quick().with_iterations(120);
        // A reduced sweep keeps the test fast while preserving the shape checks.
        let fig = completion_sweep("fig2-test", &[5, 25, 50], &HeuristicKind::all(), &config);
        let flat = fig.series_by_label("Flat Tree").unwrap();
        let ecef_lat = fig.series_by_label("ECEF-LAT").unwrap();

        // Paper: at 50 clusters the flat tree is in the tens of seconds while the
        // ECEF family remains around 3–4 s.
        assert!(flat.y_at(50.0).unwrap() > 10.0);
        assert!(ecef_lat.y_at(50.0).unwrap() < 6.0);

        // The ECEF curve growth from 5 to 50 clusters is modest.
        let growth = ecef_lat.y_at(50.0).unwrap() / ecef_lat.y_at(5.0).unwrap();
        assert!(growth < 2.0, "ECEF-LAT grew by {growth}x");

        // FEF sits between the flat tree and the ECEF family.
        let fef = fig.series_by_label("FEF").unwrap();
        assert!(fef.y_at(50.0).unwrap() < flat.y_at(50.0).unwrap());
        assert!(fef.y_at(50.0).unwrap() > ecef_lat.y_at(50.0).unwrap());
    }
}
