//! Figure 3: the ECEF-like heuristics in isolation, 5–50 clusters.

use crate::figures::completion_sweep;
use crate::params::ExperimentConfig;
use crate::report::FigureResult;
use gridcast_core::HeuristicKind;

/// Cluster counts swept by Figure 3 (same axis as Figure 2).
pub const CLUSTER_COUNTS: [usize; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Reproduces Figure 3: ECEF, ECEF-LA, ECEF-LAt and ECEF-LAT only.
pub fn run(config: &ExperimentConfig) -> FigureResult {
    completion_sweep(
        "Figure 3: ECEF-like heuristics, 1 MB broadcast, 5-50 clusters",
        &CLUSTER_COUNTS,
        &HeuristicKind::ecef_family(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_four_curves_are_close_and_in_the_paper_range() {
        let config = ExperimentConfig::quick().with_iterations(150);
        let fig = completion_sweep(
            "fig3-test",
            &[10, 30, 50],
            &HeuristicKind::ecef_family(),
            &config,
        );
        assert_eq!(fig.series.len(), 4);
        // The paper's Figure 3 y-axis spans 3.0–3.7 s: all four heuristics stay
        // within a narrow band of each other at every cluster count.
        for &x in &[10.0, 30.0, 50.0] {
            let values: Vec<f64> = fig.series.iter().map(|s| s.y_at(x).unwrap()).collect();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(0.0, f64::max);
            assert!(
                max / min < 1.25,
                "ECEF-family spread too wide at {x} clusters: {values:?}"
            );
            assert!(min > 1.0 && max < 8.0, "out of range at {x}: {values:?}");
        }
    }
}
