//! The Section 6 mixed strategy: quantify the recommendation to switch
//! heuristics based on the grid size.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use crate::runner::run_monte_carlo;
use gridcast_core::{HeuristicKind, MixedStrategy};

/// Cluster counts used by the mixed-strategy analysis.
pub const CLUSTER_COUNTS: [usize; 6] = [5, 10, 20, 30, 40, 50];

/// For every cluster count, reports the mean makespan of the two component
/// heuristics (ECEF-LA and ECEF-LAT) and the mean makespan the mixed strategy
/// achieves by selecting between them with its threshold rule.
pub fn run(config: &ExperimentConfig) -> FigureResult {
    let strategy = MixedStrategy::default();
    let components = [HeuristicKind::EcefLa, HeuristicKind::EcefLaMax];
    let mut small_points = Vec::new();
    let mut large_points = Vec::new();
    let mut mixed_points = Vec::new();
    for &clusters in &CLUSTER_COUNTS {
        let outcome = run_monte_carlo(clusters, &components, config);
        let small = outcome.mean_of(HeuristicKind::EcefLa).unwrap().as_secs();
        let large = outcome.mean_of(HeuristicKind::EcefLaMax).unwrap().as_secs();
        let selected = strategy.select(clusters);
        let mixed = outcome.mean_of(selected).unwrap().as_secs();
        small_points.push((clusters as f64, small));
        large_points.push((clusters as f64, large));
        mixed_points.push((clusters as f64, mixed));
    }
    let mut figure = FigureResult::new(
        "Mixed strategy (Section 6): ECEF-LA vs ECEF-LAT vs size-based selection",
        "clusters",
        "completion time (s)",
    );
    figure.push(Series::new(HeuristicKind::EcefLa.name(), small_points));
    figure.push(Series::new(HeuristicKind::EcefLaMax.name(), large_points));
    figure.push(Series::new("Mixed", mixed_points));
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_strategy_tracks_the_better_component() {
        let config = ExperimentConfig::quick().with_iterations(150);
        let fig = run(&config);
        assert_eq!(fig.series.len(), 3);
        let mixed = fig.series_by_label("Mixed").unwrap();
        let la = fig.series_by_label("ECEF-LA").unwrap();
        let lat = fig.series_by_label("ECEF-LAT").unwrap();
        for &x in &[5.0, 50.0] {
            let m = mixed.y_at(x).unwrap();
            let best = la.y_at(x).unwrap().min(lat.y_at(x).unwrap());
            let worst = la.y_at(x).unwrap().max(lat.y_at(x).unwrap());
            // The mixed strategy always equals one of its components and never
            // exceeds the worse one.
            assert!(m <= worst + 1e-12);
            assert!(m >= best - 1e-12);
        }
    }
}
