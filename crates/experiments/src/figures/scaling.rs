//! Grid-scale extension of the paper's sweeps: 50 → 1000 clusters.
//!
//! Figures 1–4 stop at 50 clusters — the paper's `O(n³)`-and-worse scheduling
//! loops made anything larger impractical. With the engine's k-best candidate
//! cache the schedule construction is `O(n² log n)`, so this sweep pushes the
//! same Monte-Carlo methodology to 1000-cluster grids and reports how the
//! heuristics' mean completion times degrade relative to each other at scale.
//!
//! Two things differ from the classic sweeps:
//!
//! * iterations are scaled down (these grids are 20–400× bigger than Figure
//!   2's, and heuristic *ranking* stabilises with far fewer samples than the
//!   absolute means of the small grids);
//! * each instance is scheduled with
//!   [`gridcast_core::makespans_sharded`], sharding the seven heuristics
//!   across worker threads — the batched-runner counterpart for the regime
//!   where one problem is large instead of many problems being abundant. The
//!   aggregation stays **bit-identical for any thread count** because the
//!   per-instance makespans are summed in heuristic order, exactly like the
//!   iteration-sharded runner.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_core::{makespans_sharded, BroadcastProblem, HeuristicKind};
use gridcast_topology::{ClusterId, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Cluster counts swept by the scaling figure.
pub const CLUSTER_COUNTS: [usize; 5] = [50, 100, 200, 500, 1000];

/// How many Monte-Carlo iterations the sweep runs per cluster count, derived
/// from the configured iteration budget (2000 → 8).
pub fn iterations_for(config: &ExperimentConfig) -> usize {
    (config.iterations / 250).clamp(2, 64)
}

/// Runs the scaling sweep: all seven heuristics, 50–1000 clusters.
pub fn run(config: &ExperimentConfig) -> FigureResult {
    scaling_sweep(
        "Scaling sweep: 1 MB broadcast in grids of up to 1000 clusters",
        &CLUSTER_COUNTS,
        &HeuristicKind::all(),
        config,
    )
}

/// The sweep engine behind [`run`], reusable with reduced cluster counts for
/// smoke tests.
pub fn scaling_sweep(
    title: &str,
    cluster_counts: &[usize],
    kinds: &[HeuristicKind],
    config: &ExperimentConfig,
) -> FigureResult {
    let iterations = iterations_for(config);
    let mut per_kind: Vec<Vec<(f64, f64)>> = vec![Vec::new(); kinds.len()];
    for &clusters in cluster_counts {
        let mut sums = vec![0.0f64; kinds.len()];
        for iteration in 0..iterations {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(iteration as u64));
            let generator =
                GridGenerator::with_ranges(config.ranges.clone()).cluster_size(config.cluster_size);
            let grid = generator.generate(clusters, &mut rng);
            let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), config.message);
            let spans = makespans_sharded(&problem, kinds);
            for (sum, span) in sums.iter_mut().zip(&spans) {
                *sum += span.as_secs();
            }
        }
        for (points, sum) in per_kind.iter_mut().zip(&sums) {
            points.push((clusters as f64, sum / iterations as f64));
        }
    }
    let mut figure = FigureResult::new(title, "clusters", "mean completion time (s)");
    for (kind, points) in kinds.iter().zip(per_kind) {
        figure.push(Series::new(kind.name(), points));
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_ranking_holds_at_larger_scales() {
        // A reduced sweep keeps the test fast while checking the shape: the
        // flat tree keeps degrading linearly while the grid-aware heuristics
        // stay orders of magnitude below it.
        let config = ExperimentConfig::quick().with_iterations(500);
        let fig = scaling_sweep("scaling-test", &[50, 150], &HeuristicKind::all(), &config);
        assert_eq!(fig.series.len(), 7);
        let flat = fig.series_by_label("Flat Tree").unwrap();
        let ecef_lat = fig.series_by_label("ECEF-LAT").unwrap();
        assert!(flat.y_at(150.0).unwrap() > 3.0 * flat.y_at(50.0).unwrap() * 0.8);
        assert!(ecef_lat.y_at(150.0).unwrap() < flat.y_at(150.0).unwrap() / 4.0);
        // Means are deterministic for a given seed.
        let again = scaling_sweep("scaling-test", &[50, 150], &HeuristicKind::all(), &config);
        assert_eq!(fig, again);
    }

    #[test]
    fn iteration_budget_scales_with_config() {
        assert_eq!(iterations_for(&ExperimentConfig::default()), 8);
        assert_eq!(
            iterations_for(&ExperimentConfig::default().with_iterations(100_000)),
            64
        );
        assert_eq!(
            iterations_for(&ExperimentConfig::default().with_iterations(1)),
            2
        );
    }
}
