//! What-if analysis: how the best broadcast strategy shifts as the root's
//! uplink degrades.
//!
//! The paper's Section 7 motivation is *predictive scheduling* — evaluate the
//! candidate heuristics against the model and commit to the winner before
//! paying wide-area prices. This figure runs that loop under perturbation:
//! the GRID'5000 Table-3 grid with the root cluster's **uplink gap scaled**
//! by growing factors (a congested or mis-provisioned site link, the
//! operational scenario a grid scheduler actually faces). For every factor
//! the [`WhatIfRunner`] predicts all seven heuristics, and two extra series
//! carry the winner's prediction and its node-level execution on the unified
//! discrete-event core.
//!
//! The flat tree — the paper's winner on the healthy grid — degrades fastest
//! (every byte it moves crosses the degraded uplink exactly once per
//! cluster), while relaying strategies route around the damage; the crossover
//! is the figure's point: the *ranking* of heuristics is not stable under
//! perturbation, so predicting per-instance (many what-ifs per second) beats
//! fixing one strategy offline.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_core::ScheduleEngine;
use gridcast_plogp::MessageSize;
use gridcast_simulator::{Perturbation, Scenario, WhatIfRunner};
use gridcast_topology::{grid5000_table3, ClusterId};

/// Uplink degradation factors swept by the figure (1 = the healthy grid).
pub const DEGRADATION_FACTORS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Runs the what-if sweep on the Table-3 grid.
pub fn run(_config: &ExperimentConfig) -> FigureResult {
    degradation_sweep(
        "What-if on GRID'5000: root uplink degraded, best schedule re-picked",
        &DEGRADATION_FACTORS,
    )
}

/// The sweep behind [`run`], reusable with fewer factors for smoke tests.
pub fn degradation_sweep(title: &str, factors: &[f64]) -> FigureResult {
    let grid = grid5000_table3();
    let root = ClusterId(0);
    let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), root);
    let scenarios: Vec<Scenario> = factors
        .iter()
        .map(|&factor| {
            if factor == 1.0 {
                Scenario::baseline()
            } else {
                Scenario::one(Perturbation::DegradeUplink {
                    cluster: root,
                    factor,
                })
            }
        })
        .collect();
    // The figure is tiny (a handful of scenarios); evaluate sequentially with
    // one warm engine — the worker pool is for the thousand-scenario sweeps.
    let mut engine = ScheduleEngine::new();
    let mut makespans = Vec::new();
    let reports: Vec<_> = scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| runner.evaluate(&mut engine, &mut makespans, i, s))
        .collect();

    let mut figure = FigureResult::new(title, "root uplink gap factor", "completion time (s)");
    for (slot, kind) in runner.kinds().iter().enumerate() {
        let points: Vec<(f64, f64)> = factors
            .iter()
            .zip(&reports)
            .map(|(&f, r)| (f, r.makespans[slot].as_secs()))
            .collect();
        figure.push(Series::new(kind.name(), points));
    }
    figure.push(Series::new(
        "Best (predicted)",
        factors
            .iter()
            .zip(&reports)
            .map(|(&f, r)| (f, r.predicted.as_secs()))
            .collect::<Vec<_>>(),
    ));
    figure.push(Series::new(
        "Best (simulated)",
        factors
            .iter()
            .zip(&reports)
            .map(|(&f, r)| (f, r.simulated.as_secs()))
            .collect::<Vec<_>>(),
    ));
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatif_figure_has_all_heuristics_plus_best_series() {
        let fig = degradation_sweep("t", &[1.0, 8.0]);
        // 7 heuristics + predicted best + simulated best.
        assert_eq!(fig.series.len(), 9);
        assert_eq!(fig.x_values(), vec![1.0, 8.0]);
        let best = fig.series_by_label("Best (predicted)").unwrap();
        for series in &fig.series {
            for (p, b) in series.points.iter().zip(&best.points) {
                assert!(p.y.is_finite() && p.y > 0.0);
                if series.label != "Best (simulated)" {
                    // The best series is the pointwise minimum of the
                    // heuristic predictions.
                    assert!(p.y >= b.y);
                }
            }
        }
    }

    #[test]
    fn degradation_strictly_hurts_the_flat_tree() {
        let fig = degradation_sweep("t", &[1.0, 32.0]);
        let flat = fig.series_by_label("Flat Tree").unwrap();
        assert!(flat.points[1].y > flat.points[0].y);
    }
}
