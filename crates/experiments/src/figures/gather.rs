//! Gather as the time-reversed scatter dual, and the exchange-scheduler
//! scaling win.
//!
//! Two comparisons extend the `patterns` figure:
//!
//! * **Gather policies** — the relay-capable gather orderings
//!   ([`gridcast_core::RelayGatherProblem`]) on the Table-3 grid, rooted at
//!   cluster 0, over per-node block sizes. A fourth series plots the
//!   relay-capable *scatter* with the same policy: GRID'5000's links are
//!   symmetric, so the time-reversal duality makes the two curves coincide
//!   exactly — the plotted overlap is the duality made visible.
//! * **Exchange-scheduler scaling** — wall-clock of the lazy-invalidation
//!   heap ([`ScheduleEngine::schedule_transfers`]) against the retained
//!   O(T²) oracle ([`ScheduleEngine::schedule_transfers_quadratic`]) on
//!   all-to-all transfer sets of growing cluster count (T = n·(n−1)
//!   transfers; the heap's observed work is ~O(T^1.5) on these dense sets,
//!   O(T log T) on sparse ones). The two produce byte-identical schedules
//!   (proptested); only the work differs.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_core::{
    RelayGatherProblem, RelayOrdering, RelayScatterProblem, ScheduleEngine, TransferSet,
};
use gridcast_plogp::MessageSize;
use gridcast_topology::{grid5000_table3, ClusterId, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-node block sizes swept by the gather comparison (KiB).
pub const GATHER_KIB: [u64; 5] = [4, 16, 64, 256, 1024];

/// Cluster counts swept by the exchange-scheduler comparison. The oracle is
/// quadratic in T = n·(n−1), so the sweep stops where it starts to hurt; the
/// heap side alone is also measured at larger sizes by the bench suite.
pub const EXCHANGE_CLUSTERS: [usize; 4] = [25, 50, 100, 150];

/// Runs the gather-policy comparison on the Table-3 grid.
pub fn run(_config: &ExperimentConfig) -> FigureResult {
    gather_comparison(
        "Gather on GRID'5000: relay policies vs the scatter dual",
        &GATHER_KIB,
    )
}

/// The sweep behind [`run`], reusable with reduced sizes for smoke tests.
pub fn gather_comparison(title: &str, kib_sizes: &[u64]) -> FigureResult {
    let grid = grid5000_table3();
    let root = ClusterId(0);
    let orderings = [
        ("Gather direct (reversed MagPIe)", RelayOrdering::Direct),
        (
            "Gather relay (earliest completion)",
            RelayOrdering::EarliestCompletion,
        ),
        (
            "Gather relay (earliest local finish)",
            RelayOrdering::EarliestLocalFinish,
        ),
    ];
    let mut series: Vec<(String, Vec<(f64, f64)>)> = orderings
        .iter()
        .map(|(label, _)| ((*label).to_owned(), Vec::with_capacity(kib_sizes.len())))
        .collect();
    let mut dual = Vec::with_capacity(kib_sizes.len());
    for &kib in kib_sizes {
        let per_node = MessageSize::from_kib(kib);
        let gather = RelayGatherProblem::from_grid(&grid, root, per_node);
        for ((_, ordering), (_, points)) in orderings.iter().zip(series.iter_mut()) {
            points.push((kib as f64, gather.makespan(*ordering).as_secs()));
        }
        // The scatter dual on the same (symmetric) grid: coincides with the
        // earliest-completion gather bit for bit.
        let scatter = RelayScatterProblem::from_grid(&grid, root, per_node);
        dual.push((
            kib as f64,
            scatter
                .makespan(RelayOrdering::EarliestCompletion)
                .as_secs(),
        ));
    }
    let mut figure = FigureResult::new(title, "per-node block (KiB)", "completion time (s)");
    for (label, points) in series {
        figure.push(Series::new(label, points));
    }
    figure.push(Series::new("Scatter dual (earliest completion)", dual));
    figure
}

/// Runs the exchange-scheduler scaling comparison.
pub fn run_exchange(_config: &ExperimentConfig) -> FigureResult {
    exchange_scaling(
        "Exchange scheduler: lazy-invalidation heap vs O(T²) oracle",
        &EXCHANGE_CLUSTERS,
    )
}

/// Builds the all-to-all transfer set of a random Table-2 grid — the workload
/// the exchange scheduler exists for, priced by the same
/// [`gridcast_core::alltoall_transfer_set`] builder `alltoall_schedule`
/// consumes (so the benchmarked workload is the product path, not a copy).
pub fn alltoall_transfer_set(clusters: usize, seed: u64) -> TransferSet {
    let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
    gridcast_core::alltoall_transfer_set(&grid, MessageSize::from_kib(4))
}

/// The sweep behind [`run_exchange`]: x is the transfer count T, the two
/// series are milliseconds per schedule. Also asserts the two schedules agree
/// (cheap insurance on top of the proptests — the figure can never plot a
/// divergence).
pub fn exchange_scaling(title: &str, cluster_counts: &[usize]) -> FigureResult {
    let mut engine = ScheduleEngine::new();
    let mut heap_ms = Vec::with_capacity(cluster_counts.len());
    let mut oracle_ms = Vec::with_capacity(cluster_counts.len());
    for (i, &clusters) in cluster_counts.iter().enumerate() {
        let set = alltoall_transfer_set(clusters, 1000 + i as u64);
        let transfers = set.transfers().len() as f64;
        let t0 = std::time::Instant::now();
        let fast = engine.schedule_transfers(&set);
        let heap_elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let oracle = engine.schedule_transfers_quadratic(&set);
        let oracle_elapsed = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            fast, oracle,
            "heap and oracle diverge at {clusters} clusters"
        );
        heap_ms.push((transfers, heap_elapsed));
        oracle_ms.push((transfers, oracle_elapsed));
    }
    let mut figure = FigureResult::new(title, "transfers (T)", "schedule time (ms)");
    figure.push(Series::new("Heap (lazy invalidation)", heap_ms));
    figure.push(Series::new("Oracle (O(T²))", oracle_ms));
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_series_coincide_with_the_scatter_dual_on_the_symmetric_grid() {
        let fig = gather_comparison("t", &[16, 256]);
        assert_eq!(fig.series.len(), 4);
        let gather = fig
            .series_by_label("Gather relay (earliest completion)")
            .unwrap();
        let dual = fig
            .series_by_label("Scatter dual (earliest completion)")
            .unwrap();
        for (g, s) in gather.points.iter().zip(&dual.points) {
            assert!(g.y.is_finite() && g.y > 0.0);
            // GRID'5000 is symmetric, so the duality makes the curves equal
            // to the last bit.
            assert_eq!(g.y.to_bits(), s.y.to_bits());
        }
        // The relay-capable ordering never loses to the reversed direct one.
        let direct = fig
            .series_by_label("Gather direct (reversed MagPIe)")
            .unwrap();
        for (g, d) in gather.points.iter().zip(&direct.points) {
            assert!(g.y <= d.y * 1.001);
        }
    }

    #[test]
    fn exchange_scaling_produces_matching_series() {
        let fig = exchange_scaling("t", &[6, 10]);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.x_values(), vec![30.0, 90.0]);
        for series in &fig.series {
            assert!(series.points.iter().all(|p| p.y >= 0.0));
        }
    }
}
