//! Storm sweep: makespan inflation under message loss, per heuristic.
//!
//! The paper schedules against a *calm* pLogP model — every send succeeds,
//! every gap is exactly `g(m)`. This figure prices the storm instead: each
//! heuristic's schedule for the GRID'5000 Table-3 grid is executed on the
//! node-level discrete-event core under a seeded
//! [`FaultPlan`] with growing per-attempt
//! loss, the ack/retry/timeout transport resending lost copies until they
//! land. Per loss rate the figure reports each heuristic's mean completion
//! over a fixed seed set — the *inflation* of its makespan as the network
//! degrades — and [`ranking`] extracts the per-rate winner, so a **ranking
//! flip** (the calm grid's best heuristic losing its crown in the storm) is
//! one scan away.
//!
//! The transport couples the seeds across loss rates: a copy lost at 5% is
//! also lost at 20% (same uniform draw, higher threshold), so every curve is
//! monotone in the loss rate by construction, not by averaging luck.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
use gridcast_plogp::{MessageSize, Time};
use gridcast_simulator::{
    execute_plan_under_faults, FaultPlan, NodeNetwork, NullSink, RetryPolicy, SendPlan,
};
use gridcast_topology::{grid5000_table3, ClusterId};

/// Per-attempt loss probabilities swept by the figure (0 = the calm grid).
pub const LOSS_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.15, 0.2];

/// Fault seeds averaged per cell (shared across loss rates for coupling).
pub const SEEDS: [u64; 5] = [11, 23, 47, 101, 211];

/// Retry budget: eight attempts make per-send delivery failure at the swept
/// rates (`0.2^8`) practically impossible, so every cell completes and the
/// curves measure pure retry-delay inflation.
const MAX_ATTEMPTS: u32 = 8;

/// Runs the storm sweep on the Table-3 grid.
pub fn run(_config: &ExperimentConfig) -> FigureResult {
    storm_sweep(
        "Storm on GRID'5000: makespan inflation per heuristic vs per-attempt loss",
        &LOSS_RATES,
        &SEEDS,
    )
}

/// The sweep behind [`run`], reusable with fewer cells for smoke tests.
pub fn storm_sweep(title: &str, loss_rates: &[f64], seeds: &[u64]) -> FigureResult {
    let grid = grid5000_table3();
    let message = MessageSize::from_mib(1);
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
    let network = NodeNetwork::new(&grid);
    let retry = RetryPolicy {
        max_attempts: MAX_ATTEMPTS,
        ..RetryPolicy::default()
    };
    let mut engine = ScheduleEngine::new();

    let mut figure =
        FigureResult::new(title, "per-attempt loss probability", "completion time (s)");
    for kind in HeuristicKind::all() {
        let schedule = engine.schedule(&problem, kind);
        let plan = SendPlan::from_grid_schedule(&grid, &schedule);
        let points: Vec<(f64, f64)> = loss_rates
            .iter()
            .map(|&loss| {
                let mean = seeds
                    .iter()
                    .map(|&seed| {
                        let faults = FaultPlan::new(seed).with_loss(loss);
                        let outcome = execute_plan_under_faults(
                            &network,
                            &plan,
                            message,
                            Time::ZERO,
                            &faults,
                            &retry,
                            &mut NullSink,
                        )
                        .expect("the monotone-clock invariant holds under faults");
                        assert!(
                            outcome.is_complete(),
                            "{} dropped a send at loss {loss} under {MAX_ATTEMPTS} attempts",
                            kind.name()
                        );
                        outcome.completion().as_secs()
                    })
                    .sum::<f64>()
                    / seeds.len() as f64;
                (loss, mean)
            })
            .collect();
        figure.push(Series::new(kind.name(), points));
    }
    figure
}

/// The per-loss-rate winner: for every x value of the storm sweep, the label
/// of the cheapest series. A change of label along the vector is a **ranking
/// flip** — the calm grid's best heuristic is not the storm's.
pub fn ranking(figure: &FigureResult) -> Vec<(f64, String)> {
    let xs = figure.x_values();
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            let winner = figure
                .series
                .iter()
                .min_by(|a, b| a.points[i].y.total_cmp(&b.points[i].y))
                .expect("the sweep has at least one series");
            (x, winner.label.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_sweep_inflates_every_heuristic_monotonically() {
        let fig = storm_sweep("t", &[0.0, 0.1, 0.2], &[11, 23]);
        assert_eq!(fig.series.len(), HeuristicKind::all().len());
        for series in &fig.series {
            let ys: Vec<f64> = series.points.iter().map(|p| p.y).collect();
            assert!(ys.iter().all(|y| y.is_finite() && *y > 0.0));
            // Seed coupling makes each curve monotone: a copy lost at 10% is
            // also lost at 20%, so retries only accumulate.
            assert!(
                ys.windows(2).all(|w| w[0] <= w[1]),
                "{} is not monotone under growing loss: {ys:?}",
                series.label
            );
            // And the storm genuinely bites: 20% loss costs real time.
            assert!(
                ys[2] > ys[0],
                "{} shows no inflation at 20% loss",
                series.label
            );
        }
    }

    #[test]
    fn ranking_names_a_winner_per_loss_rate() {
        let fig = storm_sweep("t", &[0.0, 0.2], &[11]);
        let ranks = ranking(&fig);
        assert_eq!(ranks.len(), 2);
        for (x, label) in &ranks {
            let series = fig.series_by_label(label).expect("winner is a series");
            let i = usize::from(*x > 0.0);
            for other in &fig.series {
                assert!(series.points[i].y <= other.points[i].y);
            }
        }
    }
}
