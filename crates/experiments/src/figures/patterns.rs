//! Patterns beyond broadcast: scatter (direct vs relay-capable) and
//! all-to-all on the GRID'5000 snapshot.
//!
//! The paper's conclusion names scatter and all-to-all as the next patterns to
//! attack; this figure quantifies what the new schedulers buy on the Table-3
//! grid:
//!
//! * **Scatter** — three series over per-node block sizes: the paper-era
//!   MagPIe baseline (direct sends in list order), the best direct-only
//!   grid-aware ordering (longest tail first), and the relay-capable greedy
//!   schedule where coordinators forward other clusters' blocks over their
//!   own links (each relayed edge priced for its concatenated payload).
//! * **All-to-all** — the corrected analytic lower bound
//!   ([`gridcast_core::alltoall_estimate`]) against the executable makespan of
//!   the engine-scheduled per-cluster-pair exchange
//!   ([`gridcast_core::alltoall_schedule`]).
//!
//! Unlike the Monte-Carlo sweeps, these run on the fixed GRID'5000 topology —
//! the point is the per-instance comparison, not a distribution.

use crate::params::ExperimentConfig;
use crate::report::{FigureResult, Series};
use gridcast_core::{
    alltoall_estimate, alltoall_schedule, RelayOrdering, RelayScatterProblem, ScatterOrdering,
    ScatterProblem,
};
use gridcast_plogp::MessageSize;
use gridcast_topology::{grid5000_table3, ClusterId};

/// Per-node block sizes swept by the scatter comparison (KiB).
pub const SCATTER_KIB: [u64; 5] = [4, 16, 64, 256, 1024];

/// Per-pair block sizes swept by the all-to-all comparison (KiB).
pub const ALLTOALL_KIB: [u64; 4] = [1, 4, 16, 64];

/// Runs the scatter comparison: MagPIe list order vs the best direct ordering
/// vs the relay-capable greedy, rooted at cluster 0 of the Table-3 grid.
pub fn run(_config: &ExperimentConfig) -> FigureResult {
    scatter_comparison(
        "Scatter on GRID'5000: direct vs relay-capable",
        &SCATTER_KIB,
    )
}

/// The sweep behind [`run`], reusable with reduced sizes for smoke tests.
pub fn scatter_comparison(title: &str, kib_sizes: &[u64]) -> FigureResult {
    let grid = grid5000_table3();
    let root = ClusterId(0);
    let mut magpie = Vec::with_capacity(kib_sizes.len());
    let mut direct_best = Vec::with_capacity(kib_sizes.len());
    let mut relay = Vec::with_capacity(kib_sizes.len());
    for &kib in kib_sizes {
        let per_node = MessageSize::from_kib(kib);
        let scatter = ScatterProblem::from_grid(&grid, root, per_node);
        magpie.push((
            kib as f64,
            ScatterOrdering::ListOrder.makespan(&scatter).as_secs(),
        ));
        direct_best.push((
            kib as f64,
            ScatterOrdering::LongestTailFirst
                .makespan(&scatter)
                .as_secs(),
        ));
        let relayable = RelayScatterProblem::from_grid(&grid, root, per_node);
        relay.push((
            kib as f64,
            relayable
                .makespan(RelayOrdering::EarliestCompletion)
                .as_secs(),
        ));
    }
    let mut figure = FigureResult::new(title, "per-node block (KiB)", "completion time (s)");
    figure.push(Series::new("MagPIe (list order)", magpie));
    figure.push(Series::new("Direct (longest tail first)", direct_best));
    figure.push(Series::new("Relay-capable (earliest completion)", relay));
    figure
}

/// Runs the all-to-all comparison: corrected lower bound vs the scheduled
/// exchange on the Table-3 grid.
pub fn run_alltoall(_config: &ExperimentConfig) -> FigureResult {
    alltoall_comparison(
        "All-to-all on GRID'5000: lower bound vs engine schedule",
        &ALLTOALL_KIB,
    )
}

/// The sweep behind [`run_alltoall`].
pub fn alltoall_comparison(title: &str, kib_sizes: &[u64]) -> FigureResult {
    let grid = grid5000_table3();
    let mut bound = Vec::with_capacity(kib_sizes.len());
    let mut scheduled = Vec::with_capacity(kib_sizes.len());
    for &kib in kib_sizes {
        let per_pair = MessageSize::from_kib(kib);
        bound.push((kib as f64, alltoall_estimate(&grid, per_pair).as_secs()));
        scheduled.push((
            kib as f64,
            alltoall_schedule(&grid, per_pair).makespan().as_secs(),
        ));
    }
    let mut figure = FigureResult::new(title, "per-pair block (KiB)", "completion time (s)");
    figure.push(Series::new("Lower bound (interface time)", bound));
    figure.push(Series::new("Engine schedule", scheduled));
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_comparison_ranks_the_strategies() {
        let fig = scatter_comparison("t", &[16, 256]);
        assert_eq!(fig.series.len(), 3);
        let magpie = fig.series_by_label("MagPIe (list order)").unwrap();
        let direct = fig.series_by_label("Direct (longest tail first)").unwrap();
        let relay = fig
            .series_by_label("Relay-capable (earliest completion)")
            .unwrap();
        for (i, point) in relay.points.iter().enumerate() {
            assert!(point.y.is_finite() && point.y > 0.0);
            // The grid-aware direct ordering never loses to list order, and
            // the relay-capable schedule is produced by a heuristic — on this
            // grid it must at least stay competitive with the direct best
            // (regression guard: within 10%).
            assert!(direct.points[i].y <= magpie.points[i].y + 1e-9);
            assert!(point.y <= direct.points[i].y * 1.10);
        }
    }

    #[test]
    fn alltoall_schedule_dominates_its_lower_bound() {
        let fig = alltoall_comparison("t", &[1, 16]);
        let bound = fig.series_by_label("Lower bound (interface time)").unwrap();
        let sched = fig.series_by_label("Engine schedule").unwrap();
        for (b, s) in bound.points.iter().zip(&sched.points) {
            assert!(b.y > 0.0);
            assert!(s.y + 1e-9 >= b.y);
        }
    }
}
