//! # gridcast-experiments
//!
//! The experiment harness that regenerates every table and figure of the paper's
//! evaluation (Sections 6 and 7).
//!
//! | experiment | paper | module | binary |
//! |------------|-------|--------|--------|
//! | E1  | Table 1 — communication levels        | [`tables::table1`] | `table1` |
//! | E2  | Table 2 — simulation parameter ranges | [`tables::table2`] | `table2` |
//! | E3  | Figure 1 — 2–10 clusters, 7 heuristics | [`figures::fig1`] | `fig1` |
//! | E4  | Figure 2 — 5–50 clusters, 7 heuristics | [`figures::fig2`] | `fig2` |
//! | E5  | Figure 3 — ECEF family only            | [`figures::fig3`] | `fig3` |
//! | E6  | Figure 4 — hit rate vs global minimum  | [`figures::fig4`] | `fig4` |
//! | E7  | Table 3 — GRID'5000 logical clusters   | [`tables::table3`] | `table3` |
//! | E8  | Figure 5 — predicted times, 88 machines | [`figures::fig5`] | `fig5` |
//! | E9  | Figure 6 — measured times, 88 machines  | [`figures::fig6`] | `fig6` |
//! | E10 | Section 6 mixed strategy               | [`figures::mixed`] | `mixed_strategy` |
//!
//! Beyond the paper: the `scaling` ([`figures::scaling`]), `patterns`
//! ([`figures::patterns`]), `gather` ([`figures::gather`]) and `whatif`
//! ([`figures::whatif`]) binaries cover the engine-scaling sweep, the
//! personalised patterns, the gather/scatter duality and the what-if
//! degradation analysis built on the concurrent
//! [`WhatIfRunner`](gridcast_simulator::WhatIfRunner).
//!
//! Every module produces a [`report::FigureResult`] (labelled series of points)
//! that can be rendered as an aligned text table or CSV, so the binaries print
//! the same rows/series the paper plots.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod figures;
pub mod params;
pub mod report;
pub mod runner;
pub mod tables;

pub use params::ExperimentConfig;
pub use report::{FigureResult, Series, SeriesPoint};
pub use runner::{run_monte_carlo, MonteCarloOutcome};
