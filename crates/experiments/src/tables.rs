//! Reproduction of the paper's tables.

use gridcast_plogp::Time;
use gridcast_topology::clustering::synthesize_node_matrix;
use gridcast_topology::{
    classify_latency, detect_logical_clusters, CommunicationLevel, Grid5000Spec, LowekampConfig,
    ParameterRanges,
};
use std::fmt::Write as _;

/// Table 1: the communication levels of the Karonis / MPICH-G2 hierarchy,
/// rendered with their example transports and the latency thresholds this
/// library uses to classify measured links.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 1: communication levels according to their latency"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<40} classification threshold",
        "level", "transport"
    );
    let thresholds = ["≥ 1 ms", "≥ 100 µs", "≥ 10 µs", "< 10 µs"];
    for (level, threshold) in CommunicationLevel::all().iter().zip(thresholds) {
        let _ = writeln!(
            out,
            "{:<10} {:<40} {}",
            format!("Level {}", level.level()),
            level.example_transport(),
            threshold
        );
    }
    out
}

/// Table 2: the parameter ranges used by the Monte-Carlo simulations.
pub fn table2() -> String {
    let ranges = ParameterRanges::table2();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 2: performance parameters used in the simulations"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12}",
        "parameter", "minimum", "maximum"
    );
    let row = |name: &str, (lo, hi): (Time, Time)| {
        format!(
            "{:<12} {:>10.0} ms {:>10.0} ms",
            name,
            lo.as_millis(),
            hi.as_millis()
        )
    };
    let _ = writeln!(out, "{}", row("L", ranges.latency));
    let _ = writeln!(out, "{}", row("g", ranges.gap));
    let _ = writeln!(out, "{}", row("T", ranges.intra_broadcast));
    out
}

/// Table 3: the 88-machine GRID'5000 snapshot — the latency matrix between the
/// six logical clusters, plus a verification that the Lowekamp-style clustering
/// algorithm (tolerance ρ = 30 %) recovers exactly those clusters from the raw
/// node-to-node latencies.
pub fn table3() -> String {
    let spec = Grid5000Spec::table3();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 3: latency between different clusters (in microseconds)"
    );
    let _ = write!(out, "{:<16}", "");
    for (name, size) in spec.names.iter().zip(&spec.sizes) {
        let _ = write!(out, "{:>16}", format!("{size} x {name}"));
    }
    let _ = writeln!(out);
    for i in 0..spec.names.len() {
        let _ = write!(out, "{:<16}", format!("Cluster {i}"));
        for j in 0..spec.names.len() {
            let v = spec.latency_us[(i, j)];
            if i == j && spec.sizes[i] <= 1 {
                let _ = write!(out, "{:>16}", "-");
            } else {
                let _ = write!(out, "{:>16.2}", v);
            }
        }
        let _ = writeln!(out);
    }

    // Recover the logical clusters from the synthesised node-to-node matrix.
    let node_matrix = synthesize_node_matrix(&spec.sizes, &spec.latency_us);
    let clustering = detect_logical_clusters(&node_matrix, LowekampConfig { tolerance: 0.30 });
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Lowekamp clustering (rho = 30%): {} machines -> {} logical clusters, sizes {:?}",
        spec.total_machines(),
        clustering.num_clusters(),
        clustering.sorted_sizes()
    );

    // Classify each inter-cluster link by communication level (Table 1).
    let wide_area_links = spec
        .latency_us
        .iter()
        .filter(|&(i, j, _)| i < j)
        .filter(|&(_, _, &us)| {
            classify_latency(Time::from_micros(us)) == CommunicationLevel::WideArea
        })
        .count();
    let _ = writeln!(out, "wide-area cluster pairs: {wide_area_links}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_levels() {
        let t = table1();
        assert!(t.contains("Level 0"));
        assert!(t.contains("Level 3"));
        assert!(t.contains("WAN-TCP"));
        assert!(t.contains("shared memory"));
    }

    #[test]
    fn table2_matches_the_paper_values() {
        let t = table2();
        assert!(t.contains("L"));
        assert!(t.contains("15 ms"));
        assert!(t.contains("600 ms"));
        assert!(t.contains("3000 ms"));
    }

    #[test]
    fn table3_reports_matrix_and_recovered_clusters() {
        let t = table3();
        assert!(t.contains("12181.52"));
        assert!(t.contains("5210.99"));
        assert!(t.contains("31 x Orsay-A"));
        assert!(t.contains("6 logical clusters"));
        assert!(t.contains("[31, 29, 20, 6, 1, 1]"));
        // Singleton diagonals print as dashes like the paper.
        assert!(t.contains('-'));
    }
}
