//! Experiment configuration.

use gridcast_plogp::MessageSize;
use gridcast_topology::ParameterRanges;
use serde::{Deserialize, Serialize};

/// Configuration shared by the Monte-Carlo experiments (Figures 1–4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of random instances per configuration. The paper uses 10 000; the
    /// default here is 2 000 which reproduces the curves within the line width
    /// while keeping a full run in the seconds range. Binaries accept an
    /// `--iterations` override.
    pub iterations: usize,
    /// Broadcast payload; the paper fixes 1 MB for the simulations.
    pub message: MessageSize,
    /// Parameter sampling ranges (Table 2 by default).
    pub ranges: ParameterRanges,
    /// Number of machines per generated cluster (the Monte-Carlo experiments
    /// never look inside clusters, but the value must be positive).
    pub cluster_size: u32,
    /// Base RNG seed; iteration `i` uses `seed + i` so runs are reproducible and
    /// trivially parallelisable.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            iterations: 2_000,
            message: MessageSize::from_mib(1),
            ranges: ParameterRanges::table2(),
            cluster_size: 16,
            seed: 0x5EED_CA57,
        }
    }
}

impl ExperimentConfig {
    /// The paper's exact setting: 10 000 iterations of a 1 MB broadcast with
    /// Table 2 parameters.
    pub fn paper() -> Self {
        ExperimentConfig {
            iterations: 10_000,
            ..ExperimentConfig::default()
        }
    }

    /// A fast configuration for smoke tests and CI.
    pub fn quick() -> Self {
        ExperimentConfig {
            iterations: 200,
            ..ExperimentConfig::default()
        }
    }

    /// Overrides the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        self.iterations = iterations;
        self
    }

    /// Parses an `--iterations N` override from command-line arguments, falling
    /// back to the current value. Used by every experiment binary.
    pub fn with_iterations_from_args(mut self, args: &[String]) -> Self {
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if arg == "--iterations" {
                if let Some(value) = iter.next().and_then(|v| v.parse::<usize>().ok()) {
                    if value > 0 {
                        self.iterations = value;
                    }
                }
            } else if let Some(value) = arg
                .strip_prefix("--iterations=")
                .and_then(|v| v.parse::<usize>().ok())
            {
                if value > 0 {
                    self.iterations = value;
                }
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::Time;

    #[test]
    fn defaults_follow_table2() {
        let config = ExperimentConfig::default();
        assert_eq!(config.message, MessageSize::from_mib(1));
        assert_eq!(config.ranges.latency.1, Time::from_millis(15.0));
        assert!(config.iterations >= 1000);
        assert_eq!(ExperimentConfig::paper().iterations, 10_000);
        assert!(ExperimentConfig::quick().iterations < 1000);
    }

    #[test]
    fn iteration_overrides() {
        let config = ExperimentConfig::default().with_iterations(5);
        assert_eq!(config.iterations, 5);
        let args: Vec<String> = vec!["--iterations".into(), "42".into()];
        assert_eq!(
            ExperimentConfig::default()
                .with_iterations_from_args(&args)
                .iterations,
            42
        );
        let args: Vec<String> = vec!["--iterations=7".into()];
        assert_eq!(
            ExperimentConfig::default()
                .with_iterations_from_args(&args)
                .iterations,
            7
        );
        // Invalid values are ignored.
        let args: Vec<String> = vec!["--iterations".into(), "zero".into()];
        assert_eq!(
            ExperimentConfig::default()
                .with_iterations_from_args(&args)
                .iterations,
            ExperimentConfig::default().iterations
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = ExperimentConfig::default().with_iterations(0);
    }
}
