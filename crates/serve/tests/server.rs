//! End-to-end tests of the serving daemon: golden transcripts, worker-count
//! bit-identity, cache/warm-start consistency and graceful rejection.

use gridcast_core::BroadcastProblem;
use gridcast_plogp::MessageSize;
use gridcast_serve::{Server, ServerConfig};
use gridcast_topology::{ClusterId, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Serialize as _, Value};
use std::io::Cursor;

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::default()
    }
}

fn batch(server: &mut Server, lines: &[&str]) -> Vec<String> {
    let lines: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let (responses, _) = server.handle_batch(&lines);
    responses
}

fn one(server: &mut Server, line: &str) -> String {
    batch(server, &[line]).remove(0)
}

const TABLE2_5: &str = r#""grid":{"table2":{"clusters":5,"seed":11,"cluster_size":4}}"#;

#[test]
fn golden_transcript_control_and_error_lines() {
    let mut server = Server::new(config(2));
    // Control lines and rejections have fully deterministic response bytes.
    assert_eq!(
        one(&mut server, r#"{"cmd":"shutdown"}"#),
        r#"{"status":"ok","msg":"shutting down"}"#
    );
    assert_eq!(
        one(&mut server, r#"{"grid":"atlantis_cluster"}"#),
        r#"{"status":"error","error":"unknown topology `atlantis_cluster` (the daemon knows \"grid5000_table3\")"}"#
    );
    assert_eq!(
        one(
            &mut server,
            r#"{"id":3,"grid":"grid5000_table3","root":99}"#
        ),
        r#"{"id":3,"status":"error","error":"root 99 out of range for a grid of 6 clusters"}"#
    );
    let truncated = one(&mut server, "{");
    assert!(
        truncated.starts_with(r#"{"status":"error","error":"invalid JSON: json error:"#),
        "unexpected rejection shape: {truncated}"
    );
    let stats = one(&mut server, r#"{"cmd":"stats"}"#);
    assert!(stats.starts_with(r#"{"status":"ok","stats":{"requests":5,"ok":0,"errors":3"#));
}

#[test]
fn scheduling_responses_have_the_documented_shape() {
    let mut server = Server::new(config(2));
    let line = format!(
        r#"{{"id":1,{TABLE2_5},"heuristic":"ECEF","include_schedule":true,"execute":true}}"#
    );
    let response = one(&mut server, &line);
    assert!(response.starts_with(r#"{"id":1,"status":"ok","heuristic":"ECEF","predicted_secs":"#));
    assert!(response.contains(r#""cache":"cold""#));
    assert!(response.contains(r#""schedule":[{"sender":"#));
    assert!(response.contains(r#""simulated_secs":"#));
    assert!(response.contains(r#""sim_events":"#));
    // 5 clusters → 4 inter-cluster transfers.
    assert_eq!(response.matches(r#""sender":"#).count(), 4);
}

#[test]
fn transcripts_are_deterministic_across_fresh_servers() {
    let lines: Vec<String> = vec![
        format!(r#"{{"id":1,{TABLE2_5},"include_schedule":true}}"#),
        format!(r#"{{"id":2,{TABLE2_5},"heuristic":"FEF"}}"#),
        format!(
            r#"{{"id":3,{TABLE2_5},"perturbations":[{{"kind":"degrade_link","from":0,"to":1,"factor":4.0}}],"include_schedule":true,"execute":true}}"#
        ),
        r#"{"id":4,"grid":"grid5000_table3","payload_bytes":65536}"#.to_string(),
    ];
    let run = |workers: usize| -> Vec<String> {
        let mut server = Server::new(config(workers));
        let (responses, _) = server.handle_batch(&lines);
        responses
    };
    let reference = run(1);
    for workers in [2, 3, 8] {
        assert_eq!(run(workers), reference, "worker count {workers} diverged");
    }
}

#[test]
fn serve_loop_batches_answers_in_order_and_honours_shutdown() {
    let request = format!(r#"{{"id":10,{TABLE2_5}}}"#);
    let input = format!(
        "{request}\n{}\n{}\n{}\n",
        r#"{"cmd":"stats"}"#, r#"{"id":11,"grid":"grid5000_table3"}"#, r#"{"cmd":"shutdown"}"#,
    );
    let mut server = Server::new(config(2));
    let mut output = Vec::new();
    server
        .serve(Cursor::new(input.into_bytes()), &mut output)
        .unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "one response per pre-shutdown line: {text}");
    assert!(lines[0].starts_with(r#"{"id":10,"status":"ok""#));
    assert!(lines[1].starts_with(r#"{"status":"ok","stats":"#));
    assert!(lines[2].starts_with(r#"{"id":11,"status":"ok""#));
    assert_eq!(lines[3], r#"{"status":"ok","msg":"shutting down"}"#);
}

#[test]
fn cached_response_is_bit_identical_to_the_cold_run() {
    let mut server = Server::new(config(3));
    let line = format!(r#"{{{TABLE2_5},"include_schedule":true,"execute":true}}"#);
    let cold = one(&mut server, &line);
    let hit = one(&mut server, &line);
    assert!(cold.contains(r#""cache":"cold""#));
    assert!(hit.contains(r#""cache":"hit""#));
    assert_eq!(hit, cold.replace(r#""cache":"cold""#, r#""cache":"hit""#));
    assert_eq!(server.stats().cache_hits, 1);
    assert_eq!(server.stats().cold_runs, 1);
}

#[test]
fn warm_start_response_is_bit_identical_to_a_cold_run() {
    let perturbed = format!(
        r#"{{{TABLE2_5},"perturbations":[{{"kind":"degrade_link","from":0,"to":2,"factor":3.0}}],"include_schedule":true,"execute":true}}"#
    );

    // Server A: populate the cache with the unperturbed baseline, then ask
    // for the perturbed neighbour — it must warm-start from the logs.
    let mut warm_server = Server::new(config(2));
    let base = format!(r#"{{{TABLE2_5}}}"#);
    one(&mut warm_server, &base);
    let warm = one(&mut warm_server, &perturbed);
    assert!(warm.contains(r#""cache":"warm""#), "expected warm: {warm}");
    assert_eq!(warm_server.stats().warm_starts, 1);

    // Server B: the same perturbed request cold, from scratch.
    let mut cold_server = Server::new(config(2));
    let cold = one(&mut cold_server, &perturbed);
    assert!(cold.contains(r#""cache":"cold""#));

    assert_eq!(warm, cold.replace(r#""cache":"cold""#, r#""cache":"warm""#));
}

#[test]
fn pinned_heuristic_is_honoured_on_every_path() {
    let mut server = Server::new(config(2));
    for expected in ["Flat Tree", "BottomUp", "ECEF-LAt"] {
        let line = format!(
            r#"{{{TABLE2_5},"heuristic":{}}}"#,
            serde_json::to_string(&Value::Str(expected.into())).unwrap()
        );
        let response = one(&mut server, &line);
        assert!(
            response.contains(&format!(r#""heuristic":"{expected}""#)),
            "pin {expected} ignored: {response}"
        );
    }
    // The unpinned answer picks the best predicted makespan and also caches.
    let free = one(&mut server, &format!(r#"{{{TABLE2_5}}}"#));
    assert!(free.contains(r#""status":"ok""#));
}

#[test]
fn inline_grids_differing_in_one_link_never_share_a_cache_entry() {
    let base = GridGenerator::table2()
        .cluster_size(4)
        .generate(5, &mut ChaCha8Rng::seed_from_u64(7));
    // Identical grid except one directed link's gap nudged by one part in 2^40.
    let nudged = base.map_links(|from, to, link| {
        if from == ClusterId(1) && to == ClusterId(3) {
            link.with_scaled_gap(1.0 + 1.0 / (1u64 << 40) as f64)
        } else {
            link.clone()
        }
    });
    assert_ne!(base, nudged);

    // The cache key must separate them (content digest + full equality).
    let pa = BroadcastProblem::from_grid(&base, ClusterId(0), MessageSize::from_mib(1));
    let pb = BroadcastProblem::from_grid(&nudged, ClusterId(0), MessageSize::from_mib(1));
    assert_ne!(pa.content_digest(), pb.content_digest());

    let request = |grid: &gridcast_topology::Grid| {
        serde_json::to_string(&Value::Map(vec![
            (
                "grid".into(),
                Value::Map(vec![("inline".into(), grid.to_value())]),
            ),
            ("include_schedule".into(), Value::Bool(true)),
        ]))
        .unwrap()
    };

    let mut server = Server::new(config(2));
    let ra1 = one(&mut server, &request(&base));
    let rb = one(&mut server, &request(&nudged));
    let ra2 = one(&mut server, &request(&base));
    // Both problems ran cold (no false sharing), and the repeat of the first
    // is a genuine hit that reproduces its cold answer.
    assert!(ra1.contains(r#""cache":"cold""#));
    assert!(
        rb.contains(r#""cache":"cold""#),
        "nudged grid hit the cache of the base grid"
    );
    assert_eq!(server.stats().cold_runs, 2);
    assert_eq!(server.stats().cache_hits, 1);
    assert_eq!(ra2, ra1.replace(r#""cache":"cold""#, r#""cache":"hit""#));
}

#[test]
fn oversized_and_inadmissible_requests_are_rejected_gracefully() {
    let mut server = Server::new(ServerConfig {
        workers: 2,
        max_line_bytes: 256,
        max_clusters: 32,
        max_nodes: 100,
        ..ServerConfig::default()
    });

    // Oversized line.
    let huge = format!(r#"{{"grid":"{}"}}"#, "x".repeat(1024));
    let response = one(&mut server, &huge);
    assert!(response.contains(r#""status":"error""#));
    assert!(response.contains("exceeds the limit"));

    // Too many clusters.
    let response = one(&mut server, r#"{"grid":{"table2":{"clusters":1000}}}"#);
    assert!(response.contains("exceeds the admission limit"));

    // Cluster count admitted, node count not (20 × 16 = 320 > 100).
    let response = one(&mut server, r#"{"grid":{"table2":{"clusters":20}}}"#);
    assert!(response.contains("machines exceeds the admission limit"));

    // Inline grid with forged matrix dimensions.
    let response = one(
        &mut server,
        r#"{"grid":{"inline":{"clusters":[{"id":0,"name":"a","size":2,"intra":{"Fixed":{"broadcast_time":0.1}}}],"inter":{"n":5,"data":[]}}}}"#,
    );
    assert!(
        response.contains(r#""status":"error""#),
        "forged inline grid accepted: {response}"
    );

    // The server still works after every rejection.
    let ok = one(
        &mut server,
        r#"{"grid":{"table2":{"clusters":4,"cluster_size":4}}}"#,
    );
    assert!(ok.contains(r#""status":"ok""#));
    assert_eq!(server.stats().errors, 4);
}

#[test]
fn stats_count_hits_warms_and_colds() {
    let mut server = Server::new(config(2));
    let base = format!(r#"{{{TABLE2_5}}}"#);
    let perturbed = format!(
        r#"{{{TABLE2_5},"perturbations":[{{"kind":"degrade_uplink","cluster":1,"factor":2.0}}]}}"#
    );
    one(&mut server, &base); // cold
    one(&mut server, &base); // hit
    one(&mut server, &perturbed); // warm
    one(&mut server, &perturbed); // hit
    let stats = server.stats();
    assert_eq!(stats.cold_runs, 1);
    assert_eq!(stats.warm_starts, 1);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.ok, 4);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.batches, 4);
    assert!(stats.latency.count() >= 4);

    let rendered = one(&mut server, r#"{"cmd":"stats"}"#);
    assert!(rendered.contains(r#""cache_hits":2,"warm_starts":1,"cold_runs":1"#));
}

#[test]
fn batched_duplicates_and_mixed_lines_answer_in_order() {
    let mut server = Server::new(config(4));
    let good = format!(r#"{{"id":1,{TABLE2_5}}}"#);
    let responses = batch(
        &mut server,
        &[&good, "garbage", &good, r#"{"cmd":"stats"}"#],
    );
    assert_eq!(responses.len(), 4);
    assert!(responses[0].starts_with(r#"{"id":1,"status":"ok""#));
    assert!(responses[1].starts_with(r#"{"status":"error""#));
    // Same problem, same batch: classified before the first result landed,
    // so both are cold — but bit-identical.
    assert_eq!(responses[2], responses[0]);
    assert!(responses[3].starts_with(r#"{"status":"ok","stats":"#));
}
