//! Fuzz-style property tests: no request line — however mangled — may panic
//! the daemon. Every line gets exactly one response, and every response is
//! well-formed JSON with a `status` field.

use gridcast_serve::{wire, Server, ServerConfig};
use proptest::prelude::*;
use serde::Value;

/// Seed templates covering every request shape the protocol knows, plus a
/// few already-broken ones so mangling explores both sides of validity.
const TEMPLATES: &[&str] = &[
    r#"{"grid":"grid5000_table3"}"#,
    r#"{"id":7,"grid":{"table2":{"clusters":4,"seed":3,"cluster_size":2}},"root":1,"payload_bytes":4096}"#,
    r#"{"grid":{"table2":{"clusters":5,"cluster_size":2}},"heuristic":"ECEF-LAt","include_schedule":true}"#,
    r#"{"grid":{"table2":{"clusters":3,"cluster_size":2}},"perturbations":[{"kind":"degrade_link","from":0,"to":1,"factor":2.5}],"execute":true}"#,
    r#"{"grid":{"table2":{"clusters":3,"cluster_size":2}},"perturbations":[{"kind":"alternate_root","root":2},{"kind":"drop_relay","cluster":0}]}"#,
    r#"{"cmd":"stats"}"#,
    r#"{"cmd":"shutdown"}"#,
    r#"{"grid":{"inline":{"clusters":[{"id":0,"name":"a","size":2,"intra":{"Fixed":{"broadcast_time":0.1}}}],"inter":{"n":1,"data":[]}}}}"#,
    r#"{"grid":[],"root":null}"#,
    "",
];

/// Deterministically mangles `template` with `ops` editing operations chosen
/// by `seed`: truncations, byte flips, insertions and deletions, all applied
/// on the byte level and then reinterpreted as (lossy) UTF-8.
fn mangle(template: &str, seed: u64, ops: usize) -> String {
    let mut bytes = template.as_bytes().to_vec();
    let mut state = seed | 1;
    let mut next = || {
        // SplitMix64: cheap, deterministic, good enough for fuzz steering.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for _ in 0..ops {
        match next() % 4 {
            0 if !bytes.is_empty() => {
                let at = (next() as usize) % bytes.len();
                bytes.truncate(at);
            }
            1 if !bytes.is_empty() => {
                let at = (next() as usize) % bytes.len();
                bytes[at] = (next() % 256) as u8;
            }
            2 => {
                let at = (next() as usize) % (bytes.len() + 1);
                bytes.insert(at, (next() % 256) as u8);
            }
            3 if !bytes.is_empty() => {
                let at = (next() as usize) % bytes.len();
                bytes.remove(at);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser alone: any mangled line parses to Ok or Err, never panics.
    #[test]
    fn parse_line_never_panics(
        template in 0usize..10,
        seed in any::<u64>(),
        ops in 0usize..8,
    ) {
        let line = mangle(TEMPLATES[template], seed, ops);
        let _ = wire::parse_line(&line);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full daemon: a batch of mangled lines produces exactly one
    /// well-formed JSON response per line, and the server keeps answering
    /// valid requests afterwards.
    #[test]
    fn server_survives_mangled_batches(
        seed in any::<u64>(),
        ops in 0usize..6,
        batch_len in 1usize..5,
    ) {
        let mut server = Server::new(ServerConfig {
            workers: 2,
            max_clusters: 64,
            max_nodes: 4096,
            ..ServerConfig::default()
        });
        let lines: Vec<String> = (0..batch_len)
            .map(|i| {
                let template = TEMPLATES[(seed as usize + i) % TEMPLATES.len()];
                mangle(template, seed.wrapping_add(i as u64), ops)
            })
            .collect();
        let (responses, _) = server.handle_batch(&lines);
        prop_assert_eq!(responses.len(), lines.len());
        for response in &responses {
            let doc: Value = serde_json::from_str(response)
                .map_err(|e| TestCaseError::fail(format!("unparseable response {response:?}: {e}")))?;
            prop_assert!(
                matches!(doc.field("status"), Some(Value::Str(_))),
                "response without status: {}", response
            );
        }
        // Still alive: a known-good request round-trips.
        let (check, _) = server.handle_batch(&[
            r#"{"grid":{"table2":{"clusters":3,"cluster_size":2}}}"#.to_string(),
        ]);
        prop_assert!(check[0].contains(r#""status":"ok""#), "server wedged: {}", &check[0]);
    }
}
