//! `gridcast-serve` — the scheduling daemon's CLI entry point.
//!
//! By default the daemon reads line-delimited JSON requests from stdin and
//! writes one response line per request to stdout:
//!
//! ```text
//! printf '%s\n' '{"grid":"grid5000_table3","payload_bytes":1048576}' | gridcast-serve
//! ```
//!
//! With `--socket PATH` (Unix only) it listens on a Unix domain socket
//! instead, serving one connection at a time with the same protocol — the
//! engine pool and schedule cache persist across connections.
//!
//! Options:
//!
//! * `--workers N` — engine-pool size (default: available parallelism)
//! * `--cache-capacity N` — schedule-cache entries (default 4096, 0 disables)
//! * `--max-batch N` — max requests dispatched per batch (default 64)
//! * `--socket PATH` — serve a Unix domain socket instead of stdin/stdout

use gridcast_serve::{Server, ServerConfig};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: gridcast-serve [--workers N] [--cache-capacity N] [--max-batch N] [--socket PATH]"
}

struct Options {
    config: ServerConfig,
    socket: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut config = ServerConfig::default();
    let mut socket = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("invalid --cache-capacity: {e}"))?;
            }
            "--max-batch" => {
                config.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("invalid --max-batch: {e}"))?;
                if config.max_batch == 0 {
                    return Err("--max-batch must be at least 1".into());
                }
            }
            "--socket" => socket = Some(value("--socket")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(Options { config, socket })
}

#[cfg(unix)]
fn serve_socket(server: &mut Server, path: &str) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("gridcast-serve: listening on {path}");
    for stream in listener.incoming() {
        let stream = stream?;
        let writer = stream.try_clone()?;
        server.serve(stream, writer)?;
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_server: &mut Server, _path: &str) -> std::io::Result<()> {
    Err(std::io::Error::other(
        "--socket is only supported on Unix platforms",
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut server = Server::new(options.config);
    let result = match &options.socket {
        Some(path) => serve_socket(&mut server, path),
        None => server.serve(std::io::stdin(), std::io::stdout().lock()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gridcast-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
