//! The schedule cache: full-problem identity in, scheduling work out.
//!
//! The cache key is the [`BroadcastProblem::content_digest`] — a 64-bit FNV
//! over the root, the payload and every entry of the latency/gap/intra
//! matrices. The grid alone is **not** a key: the same topology broadcast
//! from a different root or with a different payload is a different problem
//! and caching it under the grid would serve wrong answers. And because a
//! 64-bit digest is an index rather than a proof, every lookup re-verifies
//! **full problem equality** against the stored problem before serving;
//! distinct problems that happen to collide coexist in one bucket.
//!
//! Cold runs store their per-heuristic [`CommitLog`]s. A later request for a
//! *perturbed neighbour* of a cached problem (one degraded link, a slowed
//! site) finds the baseline through the unperturbed problem's digest and
//! warm-replays the logs under the perturbation delta instead of scheduling
//! from scratch — the serving counterpart of the what-if runner's warm
//! sweep, with the engine's bit-identity invariant carrying over unchanged.

use gridcast_core::{BroadcastProblem, CommitLog, HeuristicKind, ScheduleEvent};
use gridcast_plogp::Time;
use std::collections::HashMap;
use std::sync::Arc;

/// How a response was produced, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served entirely from the cache.
    Hit,
    /// Scheduled by warm-replaying a cached neighbour's commit logs.
    Warm,
    /// Scheduled from scratch.
    Cold,
}

impl CacheOutcome {
    /// The wire label (`"hit"`, `"warm"`, `"cold"`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
            CacheOutcome::Cold => "cold",
        }
    }
}

/// One materialised schedule of a cached problem: the chosen heuristic's
/// events plus, when a request asked for execution, the simulated completion
/// and event count.
#[derive(Debug, Clone)]
pub struct ScheduleRecord {
    /// Inter-cluster transfer events, in commit order.
    pub events: Vec<ScheduleEvent>,
    /// Simulated `(completion, events_processed)`, filled on first execute.
    pub simulated: Option<(Time, usize)>,
}

/// Everything cached for one problem identity.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The full problem, kept for digest-collision verification.
    pub problem: BroadcastProblem,
    /// Predicted makespans, one per [`HeuristicKind::all`] slot.
    pub makespans: Vec<Time>,
    /// Materialised schedules per heuristic slot (filled on demand).
    pub records: Vec<Option<ScheduleRecord>>,
    /// Commit logs per slot from a cold run — the warm-start baseline for
    /// perturbed neighbours. `None` when the entry was itself produced by a
    /// warm replay (its baseline lives elsewhere).
    pub logs: Option<Arc<Vec<CommitLog>>>,
    /// Recency stamp maintained by [`ScheduleCache`]: the cache's logical
    /// clock at the entry's last insert or lookup.
    last_used: u64,
}

impl CacheEntry {
    /// An entry with predicted makespans and no materialised schedules yet.
    pub fn new(
        problem: BroadcastProblem,
        makespans: Vec<Time>,
        logs: Option<Arc<Vec<CommitLog>>>,
    ) -> Self {
        assert_eq!(makespans.len(), HeuristicKind::COUNT);
        let records = (0..HeuristicKind::COUNT).map(|_| None).collect();
        CacheEntry {
            problem,
            makespans,
            records,
            logs,
            last_used: 0,
        }
    }
}

/// A bounded LRU cache from problem identity to [`CacheEntry`], with
/// warm-start bases pinned.
///
/// Every lookup and insert stamps the entry with a logical clock, and
/// eviction removes the least-recently-used entry — but in two tiers:
/// entries **without** commit logs (produced by a warm replay; cheap to
/// recompute, never warm-started from) are evicted first, and entries
/// **holding** cold-run [`CommitLog`]s — the warm-start bases every perturbed
/// neighbour replays from, each such replay re-stamping the base through its
/// lookup — only start competing (by recency, among themselves) once no
/// unpinned entry is left. A flood of replay-produced entries therefore can
/// never push out a warm base, and a flood of fresh cold problems only
/// displaces bases that stopped being used.
///
/// The victim scan is `O(len)`, paid only on insertions past capacity;
/// serving-cache capacities are small enough (hundreds) that the scan is
/// noise next to the scheduling work an eviction implies, and the choice is
/// deterministic (stamps are unique), preserving the daemon's bit-identical
/// transcript invariant.
#[derive(Debug)]
pub struct ScheduleCache {
    capacity: usize,
    buckets: HashMap<u64, Vec<CacheEntry>>,
    tick: u64,
    len: usize,
}

impl ScheduleCache {
    /// An empty cache holding at most `capacity` entries (capacity 0 caches
    /// nothing and every lookup misses).
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            capacity,
            buckets: HashMap::new(),
            tick: 0,
            len: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the entry for `problem`, verifying full equality — a digest
    /// collision between distinct problems misses (or finds its own
    /// co-resident entry) instead of serving the wrong schedule. A hit
    /// refreshes the entry's recency stamp (warm-starting from a base goes
    /// through here, which is what keeps hot bases resident).
    pub fn get_mut(&mut self, digest: u64, problem: &BroadcastProblem) -> Option<&mut CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self
            .buckets
            .get_mut(&digest)?
            .iter_mut()
            .find(|e| e.problem == *problem)?;
        entry.last_used = tick;
        Some(entry)
    }

    /// Inserts an entry under `digest`, evicting per the two-tier LRU rule
    /// once over capacity. The caller has already checked no equal entry
    /// exists.
    pub fn insert(&mut self, digest: u64, mut entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        entry.last_used = self.tick;
        self.buckets.entry(digest).or_default().push(entry);
        self.len += 1;
        while self.len > self.capacity {
            self.evict_one();
        }
    }

    /// Removes the least-recently-used entry, preferring unpinned (log-less)
    /// entries over warm-start bases: lexicographic minimum of
    /// `(holds_logs, last_used)`. Stamps are unique, so the victim is
    /// deterministic regardless of bucket iteration order.
    fn evict_one(&mut self) {
        let mut victim: Option<(u64, usize, (bool, u64))> = None;
        for (&digest, bucket) in &self.buckets {
            for (i, e) in bucket.iter().enumerate() {
                let rank = (e.logs.is_some(), e.last_used);
                if victim.is_none_or(|(_, _, best)| rank < best) {
                    victim = Some((digest, i, rank));
                }
            }
        }
        let (digest, slot, _) = victim.expect("eviction runs only on a non-empty cache");
        let bucket = self.buckets.get_mut(&digest).expect("victim bucket exists");
        bucket.remove(slot);
        if bucket.is_empty() {
            self.buckets.remove(&digest);
        }
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::{ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem(seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(5, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    fn entry(p: &BroadcastProblem) -> CacheEntry {
        CacheEntry::new(
            p.clone(),
            vec![Time::from_millis(1.0); HeuristicKind::COUNT],
            None,
        )
    }

    /// An entry as a cold run produces it: commit logs attached, making it a
    /// warm-start base.
    fn base_entry(p: &BroadcastProblem) -> CacheEntry {
        CacheEntry::new(
            p.clone(),
            vec![Time::from_millis(1.0); HeuristicKind::COUNT],
            Some(Arc::new(Vec::new())),
        )
    }

    #[test]
    fn lookup_verifies_full_equality_not_just_the_digest() {
        let a = problem(1);
        let b = problem(2);
        assert_ne!(a.content_digest(), b.content_digest());

        let mut cache = ScheduleCache::new(8);
        let digest = a.content_digest();
        cache.insert(digest, entry(&a));

        assert!(cache.get_mut(digest, &a).is_some());
        // Simulate a digest collision: probe `a`'s digest with problem `b`.
        // Equality verification must refuse to serve `a`'s entry for `b`.
        assert!(cache.get_mut(digest, &b).is_none());

        // Colliding distinct problems coexist in one bucket.
        cache.insert(digest, entry(&b));
        assert_eq!(cache.len(), 2);
        assert!(cache.get_mut(digest, &a).is_some());
        assert!(cache.get_mut(digest, &b).is_some());
    }

    #[test]
    fn lru_eviction_removes_the_least_recently_used() {
        let mut cache = ScheduleCache::new(2);
        let problems: Vec<_> = (0..3).map(problem).collect();
        cache.insert(problems[0].content_digest(), entry(&problems[0]));
        cache.insert(problems[1].content_digest(), entry(&problems[1]));
        // Touch the older entry so the younger one becomes the LRU victim —
        // exactly where FIFO would have evicted `problems[0]`.
        assert!(cache
            .get_mut(problems[0].content_digest(), &problems[0])
            .is_some());
        cache.insert(problems[2].content_digest(), entry(&problems[2]));
        assert_eq!(cache.len(), 2);
        assert!(cache
            .get_mut(problems[0].content_digest(), &problems[0])
            .is_some());
        assert!(cache
            .get_mut(problems[1].content_digest(), &problems[1])
            .is_none());
        assert!(cache
            .get_mut(problems[2].content_digest(), &problems[2])
            .is_some());
    }

    #[test]
    fn hot_warm_base_survives_a_cold_entry_flood() {
        // A warm-start base that keeps getting replayed from (every warm run
        // looks it up, refreshing its stamp) must stay resident through an
        // arbitrarily long flood of fresh entries — both replay-produced ones
        // (unpinned, evicted first regardless of age) and new cold bases
        // (older stamps lose, and the hot base's stamp is always fresher).
        let mut cache = ScheduleCache::new(3);
        let hot = problem(100);
        cache.insert(hot.content_digest(), base_entry(&hot));

        for seed in 0..16 {
            let warm_result = problem(seed);
            cache.insert(warm_result.content_digest(), entry(&warm_result));
            // The hot base is warm-started from between insertions.
            assert!(
                cache.get_mut(hot.content_digest(), &hot).is_some(),
                "hot warm base evicted by replay-produced entry {seed}"
            );
            let cold = problem(1000 + seed);
            cache.insert(cold.content_digest(), base_entry(&cold));
            assert!(
                cache.get_mut(hot.content_digest(), &hot).is_some(),
                "hot warm base evicted by cold base {seed}"
            );
        }
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn unpinned_entries_are_evicted_before_stale_warm_bases() {
        // Even a *stale* warm base outranks a freshly inserted replay-produced
        // entry: the log-less tier empties first.
        let mut cache = ScheduleCache::new(2);
        let base = problem(200);
        cache.insert(base.content_digest(), base_entry(&base));
        let fresh: Vec<_> = (0..3).map(problem).collect();
        for p in &fresh {
            cache.insert(p.content_digest(), entry(p));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get_mut(base.content_digest(), &base).is_some());
        // Only the newest unpinned entry shares the cache with the base.
        assert!(cache
            .get_mut(fresh[2].content_digest(), &fresh[2])
            .is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ScheduleCache::new(0);
        let p = problem(3);
        cache.insert(p.content_digest(), entry(&p));
        assert!(cache.is_empty());
        assert!(cache.get_mut(p.content_digest(), &p).is_none());
    }
}
