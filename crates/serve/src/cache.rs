//! The schedule cache: full-problem identity in, scheduling work out.
//!
//! The cache key is the [`BroadcastProblem::content_digest`] — a 64-bit FNV
//! over the root, the payload and every entry of the latency/gap/intra
//! matrices. The grid alone is **not** a key: the same topology broadcast
//! from a different root or with a different payload is a different problem
//! and caching it under the grid would serve wrong answers. And because a
//! 64-bit digest is an index rather than a proof, every lookup re-verifies
//! **full problem equality** against the stored problem before serving;
//! distinct problems that happen to collide coexist in one bucket.
//!
//! Cold runs store their per-heuristic [`CommitLog`]s. A later request for a
//! *perturbed neighbour* of a cached problem (one degraded link, a slowed
//! site) finds the baseline through the unperturbed problem's digest and
//! warm-replays the logs under the perturbation delta instead of scheduling
//! from scratch — the serving counterpart of the what-if runner's warm
//! sweep, with the engine's bit-identity invariant carrying over unchanged.

use gridcast_core::{BroadcastProblem, CommitLog, HeuristicKind, ScheduleEvent};
use gridcast_plogp::Time;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// How a response was produced, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served entirely from the cache.
    Hit,
    /// Scheduled by warm-replaying a cached neighbour's commit logs.
    Warm,
    /// Scheduled from scratch.
    Cold,
}

impl CacheOutcome {
    /// The wire label (`"hit"`, `"warm"`, `"cold"`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
            CacheOutcome::Cold => "cold",
        }
    }
}

/// One materialised schedule of a cached problem: the chosen heuristic's
/// events plus, when a request asked for execution, the simulated completion
/// and event count.
#[derive(Debug, Clone)]
pub struct ScheduleRecord {
    /// Inter-cluster transfer events, in commit order.
    pub events: Vec<ScheduleEvent>,
    /// Simulated `(completion, events_processed)`, filled on first execute.
    pub simulated: Option<(Time, usize)>,
}

/// Everything cached for one problem identity.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The full problem, kept for digest-collision verification.
    pub problem: BroadcastProblem,
    /// Predicted makespans, one per [`HeuristicKind::all`] slot.
    pub makespans: Vec<Time>,
    /// Materialised schedules per heuristic slot (filled on demand).
    pub records: Vec<Option<ScheduleRecord>>,
    /// Commit logs per slot from a cold run — the warm-start baseline for
    /// perturbed neighbours. `None` when the entry was itself produced by a
    /// warm replay (its baseline lives elsewhere).
    pub logs: Option<Arc<Vec<CommitLog>>>,
}

impl CacheEntry {
    /// An entry with predicted makespans and no materialised schedules yet.
    pub fn new(
        problem: BroadcastProblem,
        makespans: Vec<Time>,
        logs: Option<Arc<Vec<CommitLog>>>,
    ) -> Self {
        assert_eq!(makespans.len(), HeuristicKind::COUNT);
        let records = (0..HeuristicKind::COUNT).map(|_| None).collect();
        CacheEntry {
            problem,
            makespans,
            records,
            logs,
        }
    }
}

/// A bounded FIFO cache from problem identity to [`CacheEntry`].
///
/// Eviction is insertion-order FIFO: the serving loop's working sets are
/// dominated by repeated identical problems and fresh perturbations of them,
/// so recency tracking buys little over the much simpler arrival order, and
/// FIFO keeps the insert path allocation-free beyond the entry itself.
#[derive(Debug)]
pub struct ScheduleCache {
    capacity: usize,
    buckets: HashMap<u64, Vec<CacheEntry>>,
    order: VecDeque<u64>,
    len: usize,
}

impl ScheduleCache {
    /// An empty cache holding at most `capacity` entries (capacity 0 caches
    /// nothing and every lookup misses).
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            capacity,
            buckets: HashMap::new(),
            order: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the entry for `problem`, verifying full equality — a digest
    /// collision between distinct problems misses (or finds its own
    /// co-resident entry) instead of serving the wrong schedule.
    pub fn get_mut(&mut self, digest: u64, problem: &BroadcastProblem) -> Option<&mut CacheEntry> {
        self.buckets
            .get_mut(&digest)?
            .iter_mut()
            .find(|e| e.problem == *problem)
    }

    /// Inserts an entry under `digest`, evicting the oldest insertion once
    /// over capacity. The caller has already checked no equal entry exists.
    pub fn insert(&mut self, digest: u64, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        self.buckets.entry(digest).or_default().push(entry);
        self.order.push_back(digest);
        self.len += 1;
        while self.len > self.capacity {
            let oldest = self
                .order
                .pop_front()
                .expect("cache length and order queue stay in sync");
            if let Some(bucket) = self.buckets.get_mut(&oldest) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                }
                if bucket.is_empty() {
                    self.buckets.remove(&oldest);
                }
            }
            self.len -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::{ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem(seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(5, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    fn entry(p: &BroadcastProblem) -> CacheEntry {
        CacheEntry::new(
            p.clone(),
            vec![Time::from_millis(1.0); HeuristicKind::COUNT],
            None,
        )
    }

    #[test]
    fn lookup_verifies_full_equality_not_just_the_digest() {
        let a = problem(1);
        let b = problem(2);
        assert_ne!(a.content_digest(), b.content_digest());

        let mut cache = ScheduleCache::new(8);
        let digest = a.content_digest();
        cache.insert(digest, entry(&a));

        assert!(cache.get_mut(digest, &a).is_some());
        // Simulate a digest collision: probe `a`'s digest with problem `b`.
        // Equality verification must refuse to serve `a`'s entry for `b`.
        assert!(cache.get_mut(digest, &b).is_none());

        // Colliding distinct problems coexist in one bucket.
        cache.insert(digest, entry(&b));
        assert_eq!(cache.len(), 2);
        assert!(cache.get_mut(digest, &a).is_some());
        assert!(cache.get_mut(digest, &b).is_some());
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let mut cache = ScheduleCache::new(2);
        let problems: Vec<_> = (0..3).map(problem).collect();
        for p in &problems {
            cache.insert(p.content_digest(), entry(p));
        }
        assert_eq!(cache.len(), 2);
        // The first insertion is gone, the two youngest remain.
        assert!(cache
            .get_mut(problems[0].content_digest(), &problems[0])
            .is_none());
        assert!(cache
            .get_mut(problems[1].content_digest(), &problems[1])
            .is_some());
        assert!(cache
            .get_mut(problems[2].content_digest(), &problems[2])
            .is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ScheduleCache::new(0);
        let p = problem(3);
        cache.insert(p.content_digest(), entry(&p));
        assert!(cache.is_empty());
        assert!(cache.get_mut(p.content_digest(), &p).is_none());
    }
}
