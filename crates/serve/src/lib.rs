//! Scheduling-as-a-service: a long-running daemon over the gridcast engine.
//!
//! The paper's heuristics answer one question — *how should this broadcast be
//! scheduled on this grid?* — and everything else in the workspace asks it in
//! batch: sweeps, benches, figures. This crate asks it **online**: a daemon
//! reads line-delimited JSON requests (a grid, a root, a payload, optionally a
//! pinned heuristic and a perturbation chain), runs them through a pool of
//! per-worker [`gridcast_core::ScheduleEngine`]s, and answers each line with
//! the chosen heuristic, its predicted makespan and, on request, the full
//! inter-cluster schedule and a simulated execution.
//!
//! Three layers:
//!
//! * [`wire`] — the request/response protocol: parsing of request lines into
//!   typed [`wire::Request`]s (malformed input is an error *response*, never a
//!   panic — the vendored JSON parser is hardened against truncation, bad
//!   escapes, out-of-range numbers and pathological nesting), and
//!   deterministic rendering of responses back to JSON lines.
//! * [`cache`] — the schedule cache, keyed by **full problem identity**
//!   (grid content digest + root + payload, via
//!   [`gridcast_core::BroadcastProblem::content_digest`]), never by grid
//!   name alone. A digest is an index, not a proof: every lookup re-checks
//!   full problem equality before serving. Cold runs store their commit
//!   logs, so a later request for a *perturbed neighbour* of a cached
//!   problem warm-starts from the logged baseline instead of scheduling
//!   from scratch.
//! * [`server`] — the engine pool and the batching loop: requests are
//!   admitted (size/shape limits), classified against the cache
//!   (hit / warm / cold), fanned out over the worker engines in
//!   deterministic chunks (responses are bit-identical for any worker
//!   count), merged back into the cache and answered in request order.
//!
//! [`stats`] instruments the loop: per-request latency histogram (p50/p99),
//! cache hit/warm/cold counters and batch-size telemetry, all queryable
//! in-band with a `{"cmd":"stats"}` control line.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod server;
pub mod stats;
pub mod wire;

pub use cache::{CacheOutcome, ScheduleCache};
pub use server::{Server, ServerConfig};
pub use stats::{LatencyHistogram, ServerStats};
pub use wire::{GridSpec, Request, RequestLine};
