//! The serving loop: admission, cache classification, engine-pool dispatch.
//!
//! A batch of request lines moves through five stages, all deterministic in
//! request order:
//!
//! 1. **Admission + parse** — oversized lines and malformed JSON become error
//!    responses for their line; nothing on the wire panics the daemon.
//! 2. **Resolution** — the grid spec is resolved (named topologies and
//!    generated grids are memoised; inline grids are consistency-checked),
//!    perturbations are validated against the grid and applied, and the
//!    [`BroadcastProblem`] plus its content digest are built.
//! 3. **Classification** — each problem is looked up in the schedule cache:
//!    a *hit* serves the stored answer, a perturbed neighbour of a cached
//!    cold run becomes a *warm* job replaying its commit logs, everything
//!    else is a *cold* job.
//! 4. **Dispatch** — jobs are split into contiguous chunks, one per worker
//!    engine, and run on scoped threads. Results land in per-job slots, so
//!    the response stream is bit-identical for any worker count.
//! 5. **Merge + render** — job results are folded back into the cache in
//!    request order and every line gets exactly one response line.

use crate::cache::{CacheEntry, CacheOutcome, ScheduleCache, ScheduleRecord};
use crate::stats::ServerStats;
use crate::wire::{self, GridSpec, OkResponse, Request, RequestLine};
use gridcast_core::{
    BroadcastProblem, CommitLog, HeuristicKind, Perturbation, ReplayDelta, ScheduleEngine,
    ScheduleEvent,
};
use gridcast_plogp::Time;
use gridcast_simulator::{execute_plan_with_sink, NodeNetwork, NullSink, SendPlan};
use gridcast_topology::{grid5000_table3, ClusterId, Grid, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker engines in the pool (≥ 1). Responses are bit-identical for any
    /// value; this only sets the dispatch parallelism.
    pub workers: usize,
    /// Schedule-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// rejected with an error response.
    pub max_line_bytes: usize,
    /// Maximum requests dispatched per batch.
    pub max_batch: usize,
    /// Maximum clusters a requested grid may have.
    pub max_clusters: usize,
    /// Maximum total machines a requested grid may have.
    pub max_nodes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 4096,
            max_line_bytes: 1 << 20,
            max_batch: 64,
            max_clusters: 512,
            max_nodes: 1 << 18,
        }
    }
}

/// Memoised grid resolution: named topologies and generated Table 2 grids
/// are built once and shared. Inline grids are not memoised — their identity
/// lives in the problem digest, and callers sending full documents per line
/// get no benefit from a second copy.
#[derive(Debug, Default)]
struct GridCache {
    map: HashMap<GridCacheKey, Arc<Grid>>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GridCacheKey {
    Named(String),
    Table2 {
        clusters: usize,
        seed: u64,
        cluster_size: u32,
    },
}

impl GridCache {
    fn resolve(&mut self, spec: &GridSpec, config: &ServerConfig) -> Result<Arc<Grid>, String> {
        let grid = match spec {
            GridSpec::Named(name) => {
                let key = GridCacheKey::Named(name.clone());
                if let Some(grid) = self.map.get(&key) {
                    return Ok(Arc::clone(grid));
                }
                if name != "grid5000_table3" {
                    return Err(format!(
                        "unknown topology `{name}` (the daemon knows \"grid5000_table3\")"
                    ));
                }
                let grid = Arc::new(grid5000_table3());
                self.map.insert(key, Arc::clone(&grid));
                grid
            }
            GridSpec::Table2 {
                clusters,
                seed,
                cluster_size,
            } => {
                if *clusters > config.max_clusters {
                    return Err(format!(
                        "grid of {clusters} clusters exceeds the admission limit of {}",
                        config.max_clusters
                    ));
                }
                let key = GridCacheKey::Table2 {
                    clusters: *clusters,
                    seed: *seed,
                    cluster_size: *cluster_size,
                };
                if let Some(grid) = self.map.get(&key) {
                    return Ok(Arc::clone(grid));
                }
                let grid = Arc::new(
                    GridGenerator::table2()
                        .cluster_size(*cluster_size)
                        .generate(*clusters, &mut ChaCha8Rng::seed_from_u64(*seed)),
                );
                self.map.insert(key, Arc::clone(&grid));
                grid
            }
            // Already consistency-checked at parse time.
            GridSpec::Inline(grid) => Arc::new(grid.as_ref().clone()),
        };
        admit_grid(&grid, config)?;
        Ok(grid)
    }
}

fn admit_grid(grid: &Grid, config: &ServerConfig) -> Result<(), String> {
    if grid.num_clusters() > config.max_clusters {
        return Err(format!(
            "grid of {} clusters exceeds the admission limit of {}",
            grid.num_clusters(),
            config.max_clusters
        ));
    }
    let nodes: u64 = grid.clusters().iter().map(|c| u64::from(c.size)).sum();
    if nodes > config.max_nodes {
        return Err(format!(
            "grid of {nodes} machines exceeds the admission limit of {}",
            config.max_nodes
        ));
    }
    Ok(())
}

/// Range-checks a request's cluster references against the resolved grid, so
/// an out-of-range root or perturbation target is an error response instead
/// of an assertion failure deep in the engine.
fn validate_against_grid(req: &Request, n: usize) -> Result<(), String> {
    let check = |what: &str, c: ClusterId| {
        if c.index() < n {
            Ok(())
        } else {
            Err(format!(
                "{what} {} out of range for a grid of {n} clusters",
                c.index()
            ))
        }
    };
    check("root", req.root)?;
    for p in &req.perturbations {
        match *p {
            Perturbation::ScaleAllLinks { .. } => {}
            Perturbation::DegradeUplink { cluster, .. } | Perturbation::DropRelay { cluster } => {
                check("perturbation cluster", cluster)?;
            }
            Perturbation::DegradeLink { from, to, .. } => {
                check("perturbation cluster", from)?;
                check("perturbation cluster", to)?;
            }
            Perturbation::DegradeSite { first, span, .. } => {
                check("perturbation cluster", first)?;
                if span > n {
                    return Err(format!(
                        "perturbation span {span} out of range for a grid of {n} clusters"
                    ));
                }
            }
            Perturbation::TimeVaryingCapacity { from, to, .. } => {
                check("perturbation cluster", from)?;
                check("perturbation cluster", to)?;
            }
            Perturbation::AlternateRoot { root } => check("alternate root", root)?,
        }
    }
    Ok(())
}

/// The warm path only pays off when the perturbation leaves most commit
/// rows intact; mirrors the what-if runner's eligibility rule.
fn warm_eligible(perturbations: &[Perturbation]) -> bool {
    !perturbations.is_empty()
        && perturbations.iter().all(|p| {
            !matches!(
                p,
                Perturbation::ScaleAllLinks { .. } | Perturbation::AlternateRoot { .. }
            )
        })
}

fn best_slot(makespans: &[Time]) -> usize {
    makespans
        .iter()
        .enumerate()
        .min_by(|(i, a), (j, b)| a.cmp(b).then(i.cmp(j)))
        .map(|(i, _)| i)
        .expect("the engine always evaluates all seven heuristics")
}

struct WarmStart {
    logs: Arc<Vec<CommitLog>>,
    delta: ReplayDelta,
}

struct Job {
    problem: BroadcastProblem,
    grid: Arc<Grid>,
    digest: u64,
    slot_pin: Option<usize>,
    warm: Option<WarmStart>,
    execute: bool,
}

struct JobOutput {
    makespans: Vec<Time>,
    logs: Option<Vec<CommitLog>>,
    slot: usize,
    events: Vec<ScheduleEvent>,
    simulated: Option<(Time, usize)>,
}

fn run_job(engine: &mut ScheduleEngine, job: &Job) -> JobOutput {
    let kinds = HeuristicKind::all();
    let (makespans, logs, slot, events) = match &job.warm {
        Some(warm) => {
            let mut makespans = Vec::new();
            engine.warm_makespans_into(&job.problem, &warm.logs, &warm.delta, &mut makespans);
            let slot = job.slot_pin.unwrap_or_else(|| best_slot(&makespans));
            engine.warm_run(&job.problem, &warm.logs[slot], &warm.delta);
            let events = engine.events().to_vec();
            (makespans, None, slot, events)
        }
        None => {
            let (makespans, logs) = engine.makespans_logged(&job.problem, &kinds);
            let slot = job.slot_pin.unwrap_or_else(|| best_slot(&makespans));
            let schedule = engine.schedule(&job.problem, kinds[slot]);
            (makespans, Some(logs), slot, schedule.events)
        }
    };
    let simulated = job.execute.then(|| {
        let network = NodeNetwork::new(&job.grid);
        let plan = SendPlan::from_inter_cluster_events(&job.grid, job.problem.root, &events);
        let outcome = execute_plan_with_sink(
            &network,
            &plan,
            job.problem.message,
            Time::ZERO,
            &mut NullSink,
        );
        (outcome.completion, outcome.events_processed)
    });
    JobOutput {
        makespans,
        logs,
        slot,
        events,
        simulated,
    }
}

/// What a request line is waiting on after classification.
enum Pending {
    /// Response already rendered (errors, control acks, cache hits).
    Ready(String),
    /// Waiting on the job with this index; rendering needs the request's
    /// echo fields.
    Job {
        job: usize,
        id: Option<u64>,
        include_schedule: bool,
        outcome: CacheOutcome,
    },
    /// Render the stats snapshot at the end of the batch, so it reflects
    /// the batch's own work.
    Stats,
}

/// The scheduling daemon: engine pool + schedule cache + counters.
pub struct Server {
    config: ServerConfig,
    engines: Vec<ScheduleEngine>,
    cache: ScheduleCache,
    grids: GridCache,
    stats: ServerStats,
}

impl Server {
    /// A server with `config.workers` engines and an empty cache.
    pub fn new(config: ServerConfig) -> Self {
        let workers = config.workers.max(1);
        Server {
            engines: (0..workers).map(|_| ScheduleEngine::new()).collect(),
            cache: ScheduleCache::new(config.cache_capacity),
            grids: GridCache::default(),
            stats: ServerStats::default(),
            config,
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Handles one batch of request lines. Returns one response line per
    /// input line (same order, no trailing newlines) and whether a shutdown
    /// command was seen.
    pub fn handle_batch(&mut self, lines: &[String]) -> (Vec<String>, bool) {
        let started = Instant::now();
        let mut shutdown = false;
        let mut jobs: Vec<Job> = Vec::new();
        let mut pending: Vec<Pending> = Vec::with_capacity(lines.len());

        for line in lines {
            self.stats.requests += 1;
            let p = self.classify_line(line, &mut jobs, &mut shutdown);
            pending.push(p);
        }

        self.dispatch_and_merge(&jobs, &mut pending);

        self.stats.batches += 1;
        self.stats.max_batch = self.stats.max_batch.max(lines.len());
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        for _ in lines {
            self.stats.latency.record(micros);
        }

        let responses = pending
            .into_iter()
            .map(|p| match p {
                Pending::Ready(line) => line,
                Pending::Stats => self.stats.render(),
                Pending::Job { .. } => {
                    unreachable!("every job was resolved by dispatch_and_merge")
                }
            })
            .collect();
        (responses, shutdown)
    }

    /// Stages 1–3 for one line: admission, parse, resolution, classification.
    fn classify_line(&mut self, line: &str, jobs: &mut Vec<Job>, shutdown: &mut bool) -> Pending {
        if line.len() > self.config.max_line_bytes {
            self.stats.errors += 1;
            return Pending::Ready(wire::render_error(
                None,
                &format!(
                    "request line of {} bytes exceeds the limit of {}",
                    line.len(),
                    self.config.max_line_bytes
                ),
            ));
        }
        let req = match wire::parse_line(line) {
            Ok(RequestLine::Schedule(req)) => req,
            Ok(RequestLine::Stats) => return Pending::Stats,
            Ok(RequestLine::Shutdown) => {
                *shutdown = true;
                return Pending::Ready(r#"{"status":"ok","msg":"shutting down"}"#.to_string());
            }
            Err(msg) => {
                self.stats.errors += 1;
                return Pending::Ready(wire::render_error(None, &msg));
            }
        };

        match self.classify_request(&req, jobs) {
            Ok(p) => p,
            Err(msg) => {
                self.stats.errors += 1;
                Pending::Ready(wire::render_error(req.id, &msg))
            }
        }
    }

    fn classify_request(&mut self, req: &Request, jobs: &mut Vec<Job>) -> Result<Pending, String> {
        let base_grid = self.grids.resolve(&req.grid, &self.config)?;
        let n = base_grid.num_clusters();
        validate_against_grid(req, n)?;

        // Apply the perturbation chain (cold path): possibly a new grid,
        // possibly a moved root.
        let mut root = req.root;
        let mut grid = Arc::clone(&base_grid);
        for p in &req.perturbations {
            if let Some(changed) = p.apply(&grid, &mut root) {
                grid = Arc::new(changed);
            }
        }

        let problem = BroadcastProblem::from_grid(&grid, root, req.payload);
        let digest = problem.content_digest();
        let slot_pin = req
            .heuristic
            .map(|k| HeuristicKind::all().iter().position(|x| *x == k).unwrap());

        // A cached entry for the exact problem?
        if let Some(entry) = self.cache.get_mut(digest, &problem) {
            let slot = slot_pin.unwrap_or_else(|| best_slot(&entry.makespans));
            let complete = entry.records[slot]
                .as_ref()
                .is_some_and(|r| !req.execute || r.simulated.is_some());
            if complete {
                self.stats.cache_hits += 1;
                self.stats.ok += 1;
                let record = entry.records[slot].as_ref().unwrap();
                return Ok(Pending::Ready(wire::render_ok(&OkResponse {
                    id: req.id,
                    heuristic: HeuristicKind::all()[slot].name(),
                    predicted: entry.makespans[slot],
                    cache: CacheOutcome::Hit.label(),
                    schedule: req.include_schedule.then(|| record.events.clone()),
                    simulated: req.execute.then(|| record.simulated.unwrap()),
                })));
            }
            // The entry knows the makespans but not this slot's schedule
            // (or its simulation). Its own cold logs, replayed under a clean
            // delta, re-derive the schedule without a cold run.
            if let Some(logs) = entry.logs.clone() {
                self.stats.warm_starts += 1;
                jobs.push(Job {
                    problem,
                    grid,
                    digest,
                    slot_pin: Some(slot),
                    warm: Some(WarmStart {
                        logs,
                        delta: ReplayDelta::clean(n),
                    }),
                    execute: req.execute,
                });
                return Ok(Pending::Job {
                    job: jobs.len() - 1,
                    id: req.id,
                    include_schedule: req.include_schedule,
                    outcome: CacheOutcome::Warm,
                });
            }
        } else if warm_eligible(&req.perturbations) {
            // Not cached — but the *unperturbed* neighbour might be, with
            // commit logs to warm-start from. (Warm-eligible chains never
            // move the root, so the base problem shares `req.root`.)
            let base_problem = BroadcastProblem::from_grid(&base_grid, req.root, req.payload);
            let base_digest = base_problem.content_digest();
            let logs = self
                .cache
                .get_mut(base_digest, &base_problem)
                .and_then(|entry| entry.logs.clone());
            if let Some(logs) = logs {
                if logs.iter().all(|log| log.compatible_with(&problem)) {
                    self.stats.warm_starts += 1;
                    jobs.push(Job {
                        problem,
                        grid,
                        digest,
                        slot_pin,
                        warm: Some(WarmStart {
                            logs,
                            delta: ReplayDelta::from_perturbations(n, &req.perturbations),
                        }),
                        execute: req.execute,
                    });
                    return Ok(Pending::Job {
                        job: jobs.len() - 1,
                        id: req.id,
                        include_schedule: req.include_schedule,
                        outcome: CacheOutcome::Warm,
                    });
                }
            }
        }

        self.stats.cold_runs += 1;
        jobs.push(Job {
            problem,
            grid,
            digest,
            slot_pin,
            warm: None,
            execute: req.execute,
        });
        Ok(Pending::Job {
            job: jobs.len() - 1,
            id: req.id,
            include_schedule: req.include_schedule,
            outcome: CacheOutcome::Cold,
        })
    }

    /// Stages 4–5: run jobs on the engine pool, fold results into the cache
    /// and render the waiting responses.
    fn dispatch_and_merge(&mut self, jobs: &[Job], pending: &mut [Pending]) {
        if jobs.is_empty() {
            return;
        }
        let workers = self.engines.len().min(jobs.len());
        let chunk = jobs.len().div_ceil(workers);
        let mut outputs: Vec<Option<JobOutput>> = jobs.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for (engine, (job_chunk, out_chunk)) in self
                .engines
                .iter_mut()
                .zip(jobs.chunks(chunk).zip(outputs.chunks_mut(chunk)))
            {
                scope.spawn(move || {
                    for (job, out) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = Some(run_job(engine, job));
                    }
                });
            }
        });

        // Merge into the cache in request order, then render.
        for (job, output) in jobs.iter().zip(&outputs) {
            let output = output.as_ref().expect("every job chunk was dispatched");
            let record = ScheduleRecord {
                events: output.events.clone(),
                simulated: output.simulated,
            };
            match self.cache.get_mut(job.digest, &job.problem) {
                Some(entry) => entry.records[output.slot] = Some(record),
                None => {
                    let logs = output.logs.clone().map(Arc::new);
                    let mut entry =
                        CacheEntry::new(job.problem.clone(), output.makespans.clone(), logs);
                    entry.records[output.slot] = Some(record);
                    self.cache.insert(job.digest, entry);
                }
            }
        }

        for p in pending.iter_mut() {
            if let Pending::Job {
                job,
                id,
                include_schedule,
                outcome,
            } = p
            {
                let output = outputs[*job].as_ref().expect("resolved above");
                self.stats.ok += 1;
                let line = wire::render_ok(&OkResponse {
                    id: *id,
                    heuristic: HeuristicKind::all()[output.slot].name(),
                    predicted: output.makespans[output.slot],
                    cache: outcome.label(),
                    schedule: include_schedule.then(|| output.events.clone()),
                    simulated: output.simulated,
                });
                *p = Pending::Ready(line);
            }
        }
    }

    /// Serves line-delimited requests from `reader` until EOF or a shutdown
    /// command, writing one response line per request to `writer`.
    ///
    /// Requests are batched adaptively: the loop blocks for the first line,
    /// then drains whatever else has already arrived (up to
    /// [`ServerConfig::max_batch`]) so a burst is dispatched to the engine
    /// pool together while a lone request is answered immediately.
    pub fn serve<R, W>(&mut self, reader: R, mut writer: W) -> std::io::Result<()>
    where
        R: Read + Send + 'static,
        W: Write,
    {
        let (tx, rx) = mpsc::channel::<std::io::Result<String>>();
        // The reader thread is detached on purpose: a shutdown command must
        // stop the daemon even if the peer never closes its end, and a
        // blocked `read_line` cannot be interrupted portably. The thread
        // exits on EOF, on error, or on its next line once the receiver is
        // gone.
        std::thread::spawn(move || {
            let mut reader = BufReader::new(reader);
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if tx.send(Ok(line)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });

        loop {
            let first = match rx.recv() {
                Ok(Ok(line)) => line,
                Ok(Err(e)) => return Err(e),
                Err(_) => return Ok(()), // EOF
            };
            let mut batch = vec![first];
            while batch.len() < self.config.max_batch {
                match rx.try_recv() {
                    Ok(Ok(line)) => batch.push(line),
                    Ok(Err(e)) => return Err(e),
                    Err(_) => break,
                }
            }
            batch.retain(|l| !l.trim().is_empty());
            let shutdown = if batch.is_empty() {
                false
            } else {
                let trimmed: Vec<String> = batch.iter().map(|l| l.trim().to_string()).collect();
                let (responses, shutdown) = self.handle_batch(&trimmed);
                for response in responses {
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                shutdown
            };
            if shutdown {
                return Ok(());
            }
        }
    }
}
