//! Serving telemetry: request counters, batch sizes and a latency histogram.

use serde::Value;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` µs (bucket 0 also absorbs sub-µs
/// samples), which resolves quantiles to within a factor of two across nine
/// decades — plenty for p50/p99 serving telemetry — with a fixed 64-slot
/// footprint and O(1) recording.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, micros: u64) {
        let bucket = (64 - micros.leading_zeros()).saturating_sub(1).min(63);
        self.buckets[bucket as usize] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An upper bound (bucket ceiling) on the `q`-quantile latency in µs,
    /// with `q` in `[0, 1]`. Returns 0 on an empty histogram.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Ceiling of bucket i = 2^(i+1) - 1 µs; the top bucket is
                // unbounded.
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// The daemon's counters, reported by the `{"cmd":"stats"}` control line.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Request lines received (control lines included).
    pub requests: u64,
    /// Successful scheduling responses.
    pub ok: u64,
    /// Error responses (malformed or rejected requests).
    pub errors: u64,
    /// Responses served entirely from the schedule cache.
    pub cache_hits: u64,
    /// Responses scheduled by warm-replaying cached commit logs.
    pub warm_starts: u64,
    /// Responses scheduled from scratch.
    pub cold_runs: u64,
    /// Batches dispatched to the engine pool.
    pub batches: u64,
    /// Largest batch dispatched so far.
    pub max_batch: usize,
    /// Per-request end-to-end latency (batch admission to response render).
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Renders the stats response as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let stats = Value::Map(vec![
            ("requests".into(), Value::U64(self.requests)),
            ("ok".into(), Value::U64(self.ok)),
            ("errors".into(), Value::U64(self.errors)),
            ("cache_hits".into(), Value::U64(self.cache_hits)),
            ("warm_starts".into(), Value::U64(self.warm_starts)),
            ("cold_runs".into(), Value::U64(self.cold_runs)),
            ("batches".into(), Value::U64(self.batches)),
            ("max_batch".into(), Value::U64(self.max_batch as u64)),
            (
                "p50_us".into(),
                Value::U64(self.latency.quantile_upper_micros(0.50)),
            ),
            (
                "p99_us".into(),
                Value::U64(self.latency.quantile_upper_micros(0.99)),
            ),
        ]);
        let doc = Value::Map(vec![
            ("status".into(), Value::Str("ok".into())),
            ("stats".into(), stats),
        ]);
        serde_json::to_string(&doc).expect("stats rendering is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_micros(0.5), 0);
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(1_000_000); // bucket [2^19, 2^20)
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_upper_micros(0.50);
        assert!((100..=255).contains(&p50), "p50 bound {p50}");
        // The single slow sample sits exactly at the p99 rank boundary.
        assert!(h.quantile_upper_micros(0.999) >= 1_000_000);
        assert!(h.quantile_upper_micros(1.0) >= 1_000_000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_upper_micros(0.1) >= 1);
        assert_eq!(h.quantile_upper_micros(1.0), u64::MAX);
    }

    #[test]
    fn stats_render_is_stable() {
        let s = ServerStats {
            requests: 3,
            ok: 2,
            errors: 1,
            batches: 1,
            max_batch: 3,
            ..Default::default()
        };
        let line = s.render();
        assert!(line.starts_with(r#"{"status":"ok","stats":{"requests":3,"ok":2,"errors":1"#));
        assert!(line.contains(r#""p50_us":0,"p99_us":0"#));
    }
}
