//! The daemon's line protocol: JSON requests in, JSON responses out.
//!
//! One request per line. Malformed lines — truncated JSON, unknown fields of
//! the wrong shape, non-finite factors, out-of-range indices — produce an
//! error *response* on the corresponding output line; nothing on the wire can
//! panic the daemon. Responses are rendered through the vendored
//! `serde_json` with a fixed field order and `{:?}`-style float formatting,
//! so byte-identical problems produce byte-identical response lines — the
//! property the cache-consistency tests pin down.

use gridcast_core::{HeuristicKind, Perturbation, ScheduleEvent};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid};
use serde::{Deserialize as _, Value};

/// Which grid a request schedules on.
#[derive(Debug, Clone, PartialEq)]
pub enum GridSpec {
    /// A named built-in topology (currently `"grid5000_table3"`).
    Named(String),
    /// A randomly generated Table 2 grid, reproducible from its parameters.
    Table2 {
        /// Number of clusters.
        clusters: usize,
        /// RNG seed.
        seed: u64,
        /// Machines per cluster.
        cluster_size: u32,
    },
    /// A full inline grid document (validated with
    /// [`Grid::check_consistency`] before use).
    Inline(Box<Grid>),
}

/// A parsed scheduling request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<u64>,
    /// The grid to schedule on.
    pub grid: GridSpec,
    /// Broadcast root cluster.
    pub root: ClusterId,
    /// Payload size.
    pub payload: MessageSize,
    /// Pinned heuristic; `None` lets the engine pick the best predicted one.
    pub heuristic: Option<HeuristicKind>,
    /// Perturbations applied to the grid before scheduling, in order.
    pub perturbations: Vec<Perturbation>,
    /// Whether to include the full inter-cluster schedule in the response.
    pub include_schedule: bool,
    /// Whether to execute the chosen schedule in the node-level simulator
    /// and report the measured completion.
    pub execute: bool,
}

/// One parsed input line: a scheduling request or a control command.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestLine {
    /// A scheduling request.
    Schedule(Box<Request>),
    /// `{"cmd":"stats"}` — answer with the server's counters and latency
    /// quantiles.
    Stats,
    /// `{"cmd":"shutdown"}` — acknowledge and stop serving after this batch.
    Shutdown,
}

fn field_u64(v: &Value, name: &str) -> Result<u64, String> {
    match v.field(name) {
        Some(Value::U64(n)) => Ok(*n),
        Some(Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        Some(other) => Err(format!(
            "field `{name}` must be a non-negative integer, got {other:?}"
        )),
        None => Err(format!("missing field `{name}`")),
    }
}

fn field_usize(v: &Value, name: &str) -> Result<usize, String> {
    usize::try_from(field_u64(v, name)?).map_err(|_| format!("field `{name}` out of range"))
}

fn field_f64(v: &Value, name: &str) -> Result<f64, String> {
    match v.field(name) {
        Some(Value::F64(x)) => Ok(*x),
        Some(Value::U64(n)) => Ok(*n as f64),
        Some(Value::I64(n)) => Ok(*n as f64),
        Some(other) => Err(format!("field `{name}` must be a number, got {other:?}")),
        None => Err(format!("missing field `{name}`")),
    }
}

fn positive_finite_factor(v: &Value) -> Result<f64, String> {
    let factor = field_f64(v, "factor")?;
    if factor.is_finite() && factor > 0.0 {
        Ok(factor)
    } else {
        Err(format!(
            "field `factor` must be positive and finite, got {factor}"
        ))
    }
}

fn parse_grid(v: &Value) -> Result<GridSpec, String> {
    match v {
        Value::Str(name) => Ok(GridSpec::Named(name.clone())),
        Value::Map(_) => {
            if let Some(t) = v.field("table2") {
                let clusters = field_usize(t, "clusters")?;
                if clusters == 0 {
                    return Err("table2 grid needs at least one cluster".into());
                }
                let seed = match t.field("seed") {
                    Some(_) => field_u64(t, "seed")?,
                    None => 0,
                };
                let cluster_size = match t.field("cluster_size") {
                    Some(_) => u32::try_from(field_u64(t, "cluster_size")?)
                        .map_err(|_| "field `cluster_size` out of range".to_string())?,
                    None => 16,
                };
                if cluster_size == 0 {
                    return Err("field `cluster_size` must be at least 1".into());
                }
                Ok(GridSpec::Table2 {
                    clusters,
                    seed,
                    cluster_size,
                })
            } else if let Some(doc) = v.field("inline") {
                let grid =
                    Grid::from_value(doc).map_err(|e| format!("invalid inline grid: {e}"))?;
                grid.check_consistency()
                    .map_err(|e| format!("invalid inline grid: {e}"))?;
                Ok(GridSpec::Inline(Box::new(grid)))
            } else {
                Err(
                    "field `grid` must be a topology name, {\"table2\":{..}} or {\"inline\":{..}}"
                        .into(),
                )
            }
        }
        other => Err(format!(
            "field `grid` must be a string or an object, got {other:?}"
        )),
    }
}

fn parse_perturbation(v: &Value) -> Result<Perturbation, String> {
    let kind = match v.field("kind") {
        Some(Value::Str(s)) => s.as_str(),
        _ => return Err("each perturbation needs a string `kind` field".into()),
    };
    let cluster = |name: &str| field_usize(v, name).map(ClusterId);
    match kind {
        "scale_all_links" => Ok(Perturbation::ScaleAllLinks {
            factor: positive_finite_factor(v)?,
        }),
        "degrade_uplink" => Ok(Perturbation::DegradeUplink {
            cluster: cluster("cluster")?,
            factor: positive_finite_factor(v)?,
        }),
        "degrade_link" => {
            let from = cluster("from")?;
            let to = cluster("to")?;
            if from == to {
                return Err("degrade_link needs two distinct clusters".into());
            }
            Ok(Perturbation::DegradeLink {
                from,
                to,
                factor: positive_finite_factor(v)?,
            })
        }
        "degrade_site" => {
            let span = field_usize(v, "span")?;
            if span == 0 {
                return Err("field `span` must be at least 1".into());
            }
            Ok(Perturbation::DegradeSite {
                first: cluster("first")?,
                span,
                factor: positive_finite_factor(v)?,
            })
        }
        "drop_relay" => Ok(Perturbation::DropRelay {
            cluster: cluster("cluster")?,
        }),
        "alternate_root" => Ok(Perturbation::AlternateRoot {
            root: cluster("root")?,
        }),
        other => Err(format!(
            "unknown perturbation kind `{other}` (expected scale_all_links, degrade_uplink, \
             degrade_link, degrade_site, drop_relay or alternate_root)"
        )),
    }
}

/// Parses one input line. Returns a human-readable error for anything
/// malformed — the caller turns it into an error response for that line.
pub fn parse_line(line: &str) -> Result<RequestLine, String> {
    let doc: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(doc, Value::Map(_)) {
        return Err("a request must be a JSON object".into());
    }

    if let Some(cmd) = doc.field("cmd") {
        return match cmd {
            Value::Str(s) if s == "stats" => Ok(RequestLine::Stats),
            Value::Str(s) if s == "shutdown" => Ok(RequestLine::Shutdown),
            other => Err(format!(
                "unknown command {other:?} (expected \"stats\" or \"shutdown\")"
            )),
        };
    }

    let id = match doc.field("id") {
        Some(_) => Some(field_u64(&doc, "id")?),
        None => None,
    };
    let grid = parse_grid(
        doc.field("grid")
            .ok_or_else(|| "missing field `grid`".to_string())?,
    )?;
    let root = match doc.field("root") {
        Some(_) => ClusterId(field_usize(&doc, "root")?),
        None => ClusterId(0),
    };
    let payload = match doc.field("payload_bytes") {
        Some(_) => {
            let bytes = field_u64(&doc, "payload_bytes")?;
            if bytes == 0 {
                return Err("field `payload_bytes` must be at least 1".into());
            }
            MessageSize::from_bytes(bytes)
        }
        None => MessageSize::from_mib(1),
    };
    if let Some(pattern) = doc.field("pattern") {
        match pattern {
            Value::Str(s) if s == "broadcast" => {}
            other => {
                return Err(format!(
                    "unsupported pattern {other:?} (the daemon serves \"broadcast\")"
                ))
            }
        }
    }
    let heuristic = match doc.field("heuristic") {
        None => None,
        Some(Value::Str(name)) => Some(HeuristicKind::from_name(name).ok_or_else(|| {
            format!(
                "unknown heuristic `{name}` (expected one of {})",
                HeuristicKind::all().map(|k| k.name()).join(", ")
            )
        })?),
        Some(other) => return Err(format!("field `heuristic` must be a string, got {other:?}")),
    };
    let perturbations = match doc.field("perturbations") {
        None => Vec::new(),
        Some(Value::Seq(items)) => items
            .iter()
            .map(parse_perturbation)
            .collect::<Result<Vec<_>, _>>()?,
        Some(other) => {
            return Err(format!(
                "field `perturbations` must be an array, got {other:?}"
            ))
        }
    };
    let flag = |name: &str| match doc.field(name) {
        None => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("field `{name}` must be a boolean, got {other:?}")),
    };
    let include_schedule = flag("include_schedule")?;
    let execute = flag("execute")?;

    Ok(RequestLine::Schedule(Box::new(Request {
        id,
        grid,
        root,
        payload,
        heuristic,
        perturbations,
        include_schedule,
        execute,
    })))
}

/// The payload of a successful response, rendered by [`render_ok`].
#[derive(Debug, Clone, PartialEq)]
pub struct OkResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Display name of the heuristic that produced the answer.
    pub heuristic: &'static str,
    /// Predicted makespan of the chosen schedule.
    pub predicted: Time,
    /// How the answer was produced: `"hit"`, `"warm"` or `"cold"`.
    pub cache: &'static str,
    /// The inter-cluster schedule, when the request asked for it.
    pub schedule: Option<Vec<ScheduleEvent>>,
    /// Simulated completion time and event count, when the request asked for
    /// execution.
    pub simulated: Option<(Time, usize)>,
}

fn push_id(fields: &mut Vec<(String, Value)>, id: Option<u64>) {
    if let Some(id) = id {
        fields.push(("id".into(), Value::U64(id)));
    }
}

/// Renders a successful response as one JSON line (no trailing newline).
pub fn render_ok(r: &OkResponse) -> String {
    let mut fields = Vec::new();
    push_id(&mut fields, r.id);
    fields.push(("status".into(), Value::Str("ok".into())));
    fields.push(("heuristic".into(), Value::Str(r.heuristic.into())));
    fields.push(("predicted_secs".into(), Value::F64(r.predicted.as_secs())));
    fields.push(("cache".into(), Value::Str(r.cache.into())));
    if let Some(events) = &r.schedule {
        let rendered = events
            .iter()
            .map(|e| {
                Value::Map(vec![
                    ("sender".into(), Value::U64(e.sender.index() as u64)),
                    ("receiver".into(), Value::U64(e.receiver.index() as u64)),
                    ("start_secs".into(), Value::F64(e.start.as_secs())),
                    ("arrival_secs".into(), Value::F64(e.arrival.as_secs())),
                ])
            })
            .collect();
        fields.push(("schedule".into(), Value::Seq(rendered)));
    }
    if let Some((completion, events_processed)) = r.simulated {
        fields.push(("simulated_secs".into(), Value::F64(completion.as_secs())));
        fields.push(("sim_events".into(), Value::U64(events_processed as u64)));
    }
    serde_json::to_string(&Value::Map(fields)).expect("response rendering is infallible")
}

/// Renders an error response as one JSON line (no trailing newline).
pub fn render_error(id: Option<u64>, message: &str) -> String {
    let mut fields = Vec::new();
    push_id(&mut fields, id);
    fields.push(("status".into(), Value::Str("error".into())));
    fields.push(("error".into(), Value::Str(message.into())));
    serde_json::to_string(&Value::Map(fields)).expect("response rendering is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_fills_defaults() {
        let line = r#"{"grid":"grid5000_table3"}"#;
        let RequestLine::Schedule(req) = parse_line(line).unwrap() else {
            panic!("expected a schedule request");
        };
        assert_eq!(req.id, None);
        assert_eq!(req.grid, GridSpec::Named("grid5000_table3".into()));
        assert_eq!(req.root, ClusterId(0));
        assert_eq!(req.payload, MessageSize::from_mib(1));
        assert_eq!(req.heuristic, None);
        assert!(req.perturbations.is_empty());
        assert!(!req.include_schedule);
        assert!(!req.execute);
    }

    #[test]
    fn full_request_parses_every_field() {
        let line = r#"{"id":7,"grid":{"table2":{"clusters":10,"seed":42,"cluster_size":8}},
            "root":3,"payload_bytes":4096,"pattern":"broadcast","heuristic":"ECEF-LAt",
            "perturbations":[{"kind":"degrade_link","from":0,"to":1,"factor":2.5},
                             {"kind":"alternate_root","root":2}],
            "include_schedule":true,"execute":true}"#
            .replace('\n', " ");
        let RequestLine::Schedule(req) = parse_line(&line).unwrap() else {
            panic!("expected a schedule request");
        };
        assert_eq!(req.id, Some(7));
        assert_eq!(
            req.grid,
            GridSpec::Table2 {
                clusters: 10,
                seed: 42,
                cluster_size: 8
            }
        );
        assert_eq!(req.root, ClusterId(3));
        assert_eq!(req.payload, MessageSize::from_bytes(4096));
        assert_eq!(req.heuristic, Some(HeuristicKind::EcefLaMin));
        assert_eq!(
            req.perturbations,
            vec![
                Perturbation::DegradeLink {
                    from: ClusterId(0),
                    to: ClusterId(1),
                    factor: 2.5
                },
                Perturbation::AlternateRoot { root: ClusterId(2) }
            ]
        );
        assert!(req.include_schedule);
        assert!(req.execute);
    }

    #[test]
    fn control_lines_parse() {
        assert_eq!(
            parse_line(r#"{"cmd":"stats"}"#).unwrap(),
            RequestLine::Stats
        );
        assert_eq!(
            parse_line(r#"{"cmd":"shutdown"}"#).unwrap(),
            RequestLine::Shutdown
        );
        assert!(parse_line(r#"{"cmd":"reboot"}"#).is_err());
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for line in [
            "",
            "not json",
            "42",
            r#"{"grid":"#,
            r#"{"grid":7}"#,
            r#"{"grid":{"table2":{"clusters":0}}}"#,
            r#"{"grid":{"table2":{"clusters":2,"cluster_size":0}}}"#,
            r#"{"grid":{"inline":{"clusters":[],"inter":{"n":0,"data":[]}}}}"#,
            r#"{"grid":"g","payload_bytes":0}"#,
            r#"{"grid":"g","pattern":"allgather"}"#,
            r#"{"grid":"g","heuristic":"ecef-lat"}"#,
            r#"{"grid":"g","perturbations":[{"kind":"degrade_link","from":1,"to":1,"factor":2}]}"#,
            r#"{"grid":"g","perturbations":[{"kind":"degrade_link","from":0,"to":1,"factor":0}]}"#,
            r#"{"grid":"g","perturbations":[{"kind":"degrade_link","from":0,"to":1,"factor":1e999}]}"#,
            r#"{"grid":"g","perturbations":[{"kind":"degrade_site","first":0,"span":0,"factor":2}]}"#,
            r#"{"grid":"g","perturbations":[{"kind":"meteor_strike"}]}"#,
            r#"{"grid":"g","id":-1}"#,
            r#"{"grid":"g","include_schedule":"yes"}"#,
        ] {
            assert!(parse_line(line).is_err(), "line should be rejected: {line}");
        }
    }

    #[test]
    fn rendering_is_deterministic_and_ordered() {
        let ok = OkResponse {
            id: Some(9),
            heuristic: "ECEF-LAT",
            predicted: Time::from_millis(1.5),
            cache: "cold",
            schedule: Some(vec![ScheduleEvent {
                sender: ClusterId(0),
                receiver: ClusterId(1),
                start: Time::ZERO,
                arrival: Time::from_millis(1.5),
            }]),
            simulated: None,
        };
        let a = render_ok(&ok);
        let b = render_ok(&ok);
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"id":9,"status":"ok","heuristic":"ECEF-LAT""#));
        assert!(a.contains(r#""schedule":[{"sender":0,"receiver":1"#));

        let err = render_error(None, "nope");
        assert_eq!(err, r#"{"status":"error","error":"nope"}"#);
    }
}
