//! Content digests: a tiny, dependency-free FNV-1a hasher for *identity by
//! value* of model parameters.
//!
//! The serving layer caches schedules by the **full problem identity** — the
//! exact bits of every link parameter, every intra-cluster time, the root and
//! the payload — never by a name or a shape alone. That calls for a stable,
//! platform-independent content hash over floating-point parameters, which
//! `std::hash` does not promise (and `f64` does not implement). [`Fnv1a`]
//! hashes the IEEE-754 bit patterns directly, so two models hash equal iff
//! their parameters are bit-identical (NaN payloads included), and a single
//! changed link changes the digest.
//!
//! A 64-bit digest is an index, not a proof: callers that must *never*
//! conflate two distinct problems (the schedule cache) follow the digest
//! lookup with a full equality check of the keyed value.

/// FNV-1a, 64-bit. Deterministic across platforms and runs; not
/// collision-resistant against adversaries (pair it with an equality check
/// when identity matters).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

/// The FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self
    }

    /// Absorbs an unsigned integer (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a float by its IEEE-754 bit pattern. `0.0` and `-0.0` hash
    /// differently — bit identity is the contract, not numeric equality.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a UTF-8 string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` cannot collide by concatenation.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — the published test vector.
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn one_bit_flips_the_digest() {
        let digest = |x: f64| {
            let mut h = Fnv1a::new();
            h.write_f64(x);
            h.finish()
        };
        assert_ne!(digest(1.0), digest(1.0 + f64::EPSILON));
        assert_ne!(digest(0.0), digest(-0.0));
    }

    #[test]
    fn strings_are_length_prefixed() {
        let digest = |parts: &[&str]| {
            let mut h = Fnv1a::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
    }
}
