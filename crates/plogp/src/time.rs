//! A totally-ordered, non-NaN time quantity.
//!
//! All performance-model arithmetic in the workspace is carried out in seconds
//! using `f64`. Raw `f64` is error-prone for this purpose: it is not `Ord`, and
//! mixing units (the paper quotes microseconds in Table 3 and milliseconds in
//! Table 2) invites silent mistakes. [`Time`] wraps the value, provides explicit
//! unit constructors/accessors and a total order, and panics on NaN construction
//! so that invalid arithmetic is caught at the point it happens.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A time duration (or instant on a simulation clock), stored as seconds.
///
/// `Time` is `Copy`, totally ordered (NaN is rejected at construction) and
/// supports the arithmetic needed by the cost models: addition, subtraction,
/// scaling by a dimensionless factor, and division producing a ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Time(f64);

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0.0);

    /// A time larger than any realistic schedule; used as an "infinity" sentinel
    /// when searching for minima.
    pub const INFINITY: Time = Time(f64::INFINITY);

    /// Creates a time from seconds. Panics if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "Time cannot be NaN");
        Time(secs)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns whether this time is finite (not the `INFINITY` sentinel).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps negative values to zero. Useful when subtracting measured
    /// overheads that may slightly exceed the total due to noise.
    #[inline]
    pub fn clamp_non_negative(self) -> Time {
        if self.0 < 0.0 {
            Time::ZERO
        } else {
            self
        }
    }

    /// Absolute difference between two times.
    #[inline]
    pub fn abs_diff(self, other: Time) -> Time {
        Time((self.0 - other.0).abs())
    }

    /// Returns `true` if `self` is within `tolerance` of `other`.
    #[inline]
    pub fn approx_eq(self, other: Time, tolerance: Time) -> bool {
        self.abs_diff(other) <= tolerance
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so total_cmp agrees with the usual order.
        self.0.total_cmp(&other.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::from_secs(self.0 * rhs)
    }
}

impl Mul<Time> for f64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Mul<u32> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u32) -> Time {
        Time(self.0 * f64::from(rhs))
    }
}

impl Div<Time> for Time {
    /// Dividing two times yields a dimensionless ratio.
    type Output = f64;
    #[inline]
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::from_secs(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if !s.is_finite() {
            write!(f, "inf")
        } else if s == 0.0 {
            write!(f, "0s")
        } else if s.abs() >= 1.0 {
            write!(f, "{:.4}s", s)
        } else if s.abs() >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.2}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        let t = Time::from_millis(12.5);
        assert!((t.as_secs() - 0.0125).abs() < 1e-12);
        assert!((t.as_millis() - 12.5).abs() < 1e-9);
        assert!((t.as_micros() - 12500.0).abs() < 1e-6);

        let u = Time::from_micros(47.56);
        assert!((u.as_micros() - 47.56).abs() < 1e-9);
    }

    #[test]
    fn ordering_is_total_and_sane() {
        let a = Time::from_millis(1.0);
        let b = Time::from_millis(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Time::ZERO < Time::INFINITY);
        assert!(a < Time::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_construction_panics() {
        let _ = Time::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_millis(3.0);
        let b = Time::from_millis(1.5);
        assert_eq!(a + b, Time::from_millis(4.5));
        assert_eq!(a - b, Time::from_millis(1.5));
        assert_eq!(a * 2.0, Time::from_millis(6.0));
        assert_eq!(a / 2.0, Time::from_millis(1.5));
        assert!(((a / b) - 2.0).abs() < 1e-12);
        let sum: Time = vec![a, b, b].into_iter().sum();
        assert_eq!(sum, Time::from_millis(6.0));
    }

    #[test]
    fn clamp_and_diff() {
        let a = Time::from_millis(1.0);
        let b = Time::from_millis(4.0);
        assert_eq!((a - b).clamp_non_negative(), Time::ZERO);
        assert_eq!(a.abs_diff(b), Time::from_millis(3.0));
        assert!(a.approx_eq(Time::from_millis(1.0001), Time::from_micros(200.0)));
        assert!(!a.approx_eq(b, Time::from_micros(200.0)));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_secs(2.5)), "2.5000s");
        assert_eq!(format!("{}", Time::from_millis(2.5)), "2.500ms");
        assert_eq!(format!("{}", Time::from_micros(42.0)), "42.00us");
        assert_eq!(format!("{}", Time::ZERO), "0s");
    }

    #[test]
    fn sentinel_is_not_finite() {
        assert!(!Time::INFINITY.is_finite());
        assert!(Time::from_millis(3000.0).is_finite());
    }
}
