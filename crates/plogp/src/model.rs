//! The pLogP parameter set and point-to-point cost model.

use crate::{Fnv1a, GapFunction, MessageSize, PLogPError, Time};
use serde::{Deserialize, Serialize};

/// Full pLogP parameter set describing one directed link (or one homogeneous
/// cluster interconnect).
///
/// The broadcast-scheduling paper only needs `L` and `g(m)` — the makespan of a
/// wide-area transfer is modelled as `RT_i + g_{i,j}(m) + L_{i,j}` — but the send
/// and receive overheads are kept because the intra-cluster collective models
/// (binomial trees, pipelines) and the discrete-event simulator use them to decide
/// when a sender's CPU becomes free as opposed to when the wire becomes free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PLogP {
    /// End-to-end latency `L`.
    pub latency: Time,
    /// Gap function `g(m)`.
    pub gap: GapFunction,
    /// Send overhead `os(m)` as a fraction of the gap (pLogP measures it per
    /// message size; we model it as `os_fraction · g(m)` which matches the
    /// empirical observation that overheads scale with the per-message cost).
    pub os_fraction: f64,
    /// Receive overhead `or(m)` as a fraction of the gap.
    pub or_fraction: f64,
}

/// The cost decomposition of a single point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointToPoint {
    /// Time the sender is busy (cannot start another send): `g(m)`.
    pub sender_busy: Time,
    /// Time until the receiver holds the full message: `L + g(m)`.
    pub completion: Time,
    /// CPU time consumed at the sender: `os(m)`.
    pub send_overhead: Time,
    /// CPU time consumed at the receiver: `or(m)`.
    pub recv_overhead: Time,
}

impl PLogP {
    /// Creates a parameter set with an affine gap `g(m) = g0 + m/bandwidth` and
    /// default overhead fractions.
    pub fn affine(latency: Time, g0: Time, bandwidth: f64) -> Self {
        PLogP {
            latency,
            gap: GapFunction::affine(g0, bandwidth),
            os_fraction: DEFAULT_OS_FRACTION,
            or_fraction: DEFAULT_OR_FRACTION,
        }
    }

    /// Creates a parameter set with a constant (size-independent) gap, the form
    /// used by the paper's Monte-Carlo simulations where `L` and `g` are drawn
    /// directly from Table 2 for the fixed 1 MB payload.
    pub fn constant(latency: Time, gap: Time) -> Self {
        PLogP {
            latency,
            gap: GapFunction::constant(gap),
            os_fraction: DEFAULT_OS_FRACTION,
            or_fraction: DEFAULT_OR_FRACTION,
        }
    }

    /// Creates a parameter set from measured gap samples.
    pub fn from_samples(
        latency: Time,
        samples: Vec<crate::gap::GapSample>,
    ) -> Result<Self, PLogPError> {
        if latency < Time::ZERO {
            return Err(PLogPError::NegativeTime {
                parameter: "latency",
            });
        }
        Ok(PLogP {
            latency,
            gap: GapFunction::from_samples(samples)?,
            os_fraction: DEFAULT_OS_FRACTION,
            or_fraction: DEFAULT_OR_FRACTION,
        })
    }

    /// Overrides the overhead fractions (both must be within `[0, 1]`).
    pub fn with_overheads(mut self, os_fraction: f64, or_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&os_fraction),
            "os fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&or_fraction),
            "or fraction out of range"
        );
        self.os_fraction = os_fraction;
        self.or_fraction = or_fraction;
        self
    }

    /// The gap `g(m)` for a message of `m` bytes.
    #[inline]
    pub fn gap(&self, m: MessageSize) -> Time {
        self.gap.gap(m)
    }

    /// The latency `L`.
    #[inline]
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Send overhead `os(m)`.
    #[inline]
    pub fn send_overhead(&self, m: MessageSize) -> Time {
        self.gap(m) * self.os_fraction
    }

    /// Receive overhead `or(m)`.
    #[inline]
    pub fn recv_overhead(&self, m: MessageSize) -> Time {
        self.gap(m) * self.or_fraction
    }

    /// The completion time of a single message of size `m` over this link:
    /// `L + g(m)`, exactly the term used by every heuristic in the paper.
    #[inline]
    pub fn point_to_point(&self, m: MessageSize) -> Time {
        self.latency + self.gap(m)
    }

    /// Full cost decomposition for one message.
    pub fn decompose(&self, m: MessageSize) -> PointToPoint {
        let g = self.gap(m);
        PointToPoint {
            sender_busy: g,
            completion: self.latency + g,
            send_overhead: g * self.os_fraction,
            recv_overhead: g * self.or_fraction,
        }
    }

    /// Completion time of `k` back-to-back messages of size `m` from the same
    /// sender to (possibly) different receivers: the last message completes at
    /// `k·g(m) + L`. This is the flat-tree building block.
    pub fn sequential_sends(&self, m: MessageSize, k: u32) -> Time {
        if k == 0 {
            return Time::ZERO;
        }
        self.gap(m) * k + self.latency
    }

    /// Absorbs the full parameter set into a content digest: latency bits, the
    /// (variant-tagged) gap function, and both overhead fractions. Two links
    /// digest equal iff every parameter is bit-identical.
    pub fn digest_into(&self, h: &mut Fnv1a) {
        h.write_f64(self.latency.as_secs());
        self.gap.digest_into(h);
        h.write_f64(self.os_fraction).write_f64(self.or_fraction);
    }

    /// This link with its gap scaled by `factor` (latency and overhead
    /// fractions unchanged): `g(m)` becomes `factor · g(m)` for every `m`.
    /// This is the "degraded uplink" / "scaled link capacity" perturbation of
    /// the what-if simulations — capacity degradation shows up in the
    /// per-message cost, while propagation delay stays put.
    pub fn with_scaled_gap(&self, factor: f64) -> PLogP {
        PLogP {
            latency: self.latency,
            gap: self.gap.scaled(factor),
            os_fraction: self.os_fraction,
            or_fraction: self.or_fraction,
        }
    }
}

/// Default send-overhead fraction of the gap (empirically ~30 % for TCP stacks in
/// the pLogP measurement papers).
pub const DEFAULT_OS_FRACTION: f64 = 0.3;
/// Default receive-overhead fraction of the gap.
pub const DEFAULT_OR_FRACTION: f64 = 0.3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::GapSample;

    #[test]
    fn point_to_point_is_latency_plus_gap() {
        let p = PLogP::constant(Time::from_millis(10.0), Time::from_millis(300.0));
        assert_eq!(
            p.point_to_point(MessageSize::from_mib(1)),
            Time::from_millis(310.0)
        );
    }

    #[test]
    fn sequential_sends_accumulate_gap_only_once_latency() {
        let p = PLogP::constant(Time::from_millis(5.0), Time::from_millis(100.0));
        let m = MessageSize::from_mib(1);
        assert_eq!(p.sequential_sends(m, 0), Time::ZERO);
        let eps = Time::from_micros(0.001);
        assert!(p
            .sequential_sends(m, 1)
            .approx_eq(Time::from_millis(105.0), eps));
        assert!(p
            .sequential_sends(m, 4)
            .approx_eq(Time::from_millis(405.0), eps));
    }

    #[test]
    fn overhead_fractions_apply() {
        let p = PLogP::constant(Time::from_millis(1.0), Time::from_millis(100.0))
            .with_overheads(0.5, 0.25);
        let m = MessageSize::from_mib(1);
        assert_eq!(p.send_overhead(m), Time::from_millis(50.0));
        assert_eq!(p.recv_overhead(m), Time::from_millis(25.0));
        let d = p.decompose(m);
        assert_eq!(d.sender_busy, Time::from_millis(100.0));
        assert_eq!(d.completion, Time::from_millis(101.0));
        assert_eq!(d.send_overhead, Time::from_millis(50.0));
        assert_eq!(d.recv_overhead, Time::from_millis(25.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overhead_fraction_validation() {
        let _ = PLogP::constant(Time::ZERO, Time::ZERO).with_overheads(1.5, 0.0);
    }

    #[test]
    fn from_samples_validates_latency_and_table() {
        let err = PLogP::from_samples(Time::from_millis(-1.0), vec![]);
        assert_eq!(
            err,
            Err(PLogPError::NegativeTime {
                parameter: "latency"
            })
        );
        let ok = PLogP::from_samples(
            Time::from_millis(2.0),
            vec![
                GapSample {
                    size: MessageSize::from_kib(1),
                    gap: Time::from_micros(80.0),
                },
                GapSample {
                    size: MessageSize::from_mib(1),
                    gap: Time::from_millis(12.0),
                },
            ],
        )
        .unwrap();
        // 1 KiB uses the first sample, 1 MiB the second.
        assert_eq!(ok.gap(MessageSize::from_kib(1)), Time::from_micros(80.0));
        assert_eq!(ok.gap(MessageSize::from_mib(1)), Time::from_millis(12.0));
        assert!(ok.point_to_point(MessageSize::from_mib(1)) > Time::from_millis(12.0));
    }

    #[test]
    fn affine_model_matches_manual_computation() {
        // 100 MB/s link, 1 ms latency, 10 µs fixed gap.
        let p = PLogP::affine(Time::from_millis(1.0), Time::from_micros(10.0), 100e6);
        let m = MessageSize::from_bytes(1_000_000);
        let expected_gap_s = 10e-6 + 1_000_000.0 / 100e6;
        assert!((p.gap(m).as_secs() - expected_gap_s).abs() < 1e-12);
        assert!((p.point_to_point(m).as_secs() - (expected_gap_s + 1e-3)).abs() < 1e-12);
    }
}
