//! Error types for the pLogP crate.

use std::fmt;

/// Errors produced while building or evaluating pLogP models.
#[derive(Debug, Clone, PartialEq)]
pub enum PLogPError {
    /// A gap function was constructed with no sample points.
    EmptyGapTable,
    /// Gap-function sample points were not strictly increasing in message size.
    UnsortedGapTable {
        /// Index of the offending sample.
        index: usize,
    },
    /// A negative time was supplied where a duration was required.
    NegativeTime {
        /// Human-readable name of the parameter.
        parameter: &'static str,
    },
    /// A measurement run did not contain enough samples to fit parameters.
    InsufficientSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
}

impl fmt::Display for PLogPError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PLogPError::EmptyGapTable => write!(f, "gap table must contain at least one sample"),
            PLogPError::UnsortedGapTable { index } => write!(
                f,
                "gap table sample {index} is not strictly larger in message size than its predecessor"
            ),
            PLogPError::NegativeTime { parameter } => {
                write!(f, "parameter `{parameter}` must be non-negative")
            }
            PLogPError::InsufficientSamples { got, needed } => write!(
                f,
                "measurement run has {got} samples but at least {needed} are required"
            ),
        }
    }
}

impl std::error::Error for PLogPError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PLogPError::UnsortedGapTable { index: 3 };
        assert!(e.to_string().contains("sample 3"));
        let e = PLogPError::InsufficientSamples { got: 1, needed: 2 };
        assert!(e.to_string().contains("1 samples"));
        assert!(PLogPError::EmptyGapTable
            .to_string()
            .contains("at least one"));
        assert!(PLogPError::NegativeTime { parameter: "L" }
            .to_string()
            .contains("`L`"));
    }
}
