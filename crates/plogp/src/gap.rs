//! Gap functions `g(m)`.
//!
//! pLogP differs from plain LogP/LogGP by making the gap an arbitrary function of
//! the message size rather than a linear extrapolation, which lets the model
//! capture protocol switches (eager → rendezvous), TCP window effects and other
//! non-linearities that matter for collective operation tuning.
//!
//! Two representations are provided:
//!
//! * [`GapFunction::Affine`] — the classical `g(m) = g0 + m / bandwidth` form,
//!   convenient for synthetic topologies (Table 2 of the paper draws a single gap
//!   value per link for the 1 MB reference message), and
//! * [`GapFunction::Table`] — a piecewise-linear interpolation over measured
//!   sample points, matching how pLogP parameters are acquired in practice
//!   (a handful of message sizes are benchmarked and intermediate sizes are
//!   interpolated).

use crate::{Fnv1a, MessageSize, PLogPError, Time};
use serde::{Deserialize, Serialize};

/// A single measured (message size, gap) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapSample {
    /// Message size at which the gap was measured.
    pub size: MessageSize,
    /// Measured gap for that size.
    pub gap: Time,
}

/// The per-message gap `g(m)` of a link, as a function of message size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GapFunction {
    /// `g(m) = g0 + m / bandwidth` with `bandwidth` in bytes/second.
    Affine {
        /// Fixed per-message cost (software stack traversal, packetisation).
        g0: Time,
        /// Sustained bandwidth in bytes per second.
        bandwidth: f64,
    },
    /// Piecewise-linear interpolation over strictly size-increasing samples.
    /// Sizes below the first sample reuse the first gap; sizes above the last
    /// sample are extrapolated with the slope of the final segment.
    Table {
        /// Measured samples, strictly increasing in message size.
        samples: Vec<GapSample>,
    },
    /// A constant gap independent of the message size. This is how the paper's
    /// Monte-Carlo simulation treats `g`: a single value drawn from Table 2 for
    /// the fixed 1 MB payload.
    Constant {
        /// The constant gap.
        gap: Time,
    },
}

impl GapFunction {
    /// Builds an affine gap function from a fixed cost and a bandwidth in bytes/s.
    pub fn affine(g0: Time, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        GapFunction::Affine { g0, bandwidth }
    }

    /// Builds a constant gap function.
    pub fn constant(gap: Time) -> Self {
        GapFunction::Constant { gap }
    }

    /// Builds a table-based gap function, validating the sample list.
    pub fn from_samples(samples: Vec<GapSample>) -> Result<Self, PLogPError> {
        if samples.is_empty() {
            return Err(PLogPError::EmptyGapTable);
        }
        for (i, window) in samples.windows(2).enumerate() {
            if window[1].size <= window[0].size {
                return Err(PLogPError::UnsortedGapTable { index: i + 1 });
            }
        }
        if let Some(neg) = samples.iter().find(|s| s.gap < Time::ZERO) {
            let _ = neg;
            return Err(PLogPError::NegativeTime { parameter: "gap" });
        }
        Ok(GapFunction::Table { samples })
    }

    /// Evaluates the gap for a message of size `m`.
    pub fn gap(&self, m: MessageSize) -> Time {
        match self {
            GapFunction::Affine { g0, bandwidth } => *g0 + Time::from_secs(m.as_f64() / bandwidth),
            GapFunction::Constant { gap } => *gap,
            GapFunction::Table { samples } => Self::interpolate(samples, m),
        }
    }

    fn interpolate(samples: &[GapSample], m: MessageSize) -> Time {
        debug_assert!(!samples.is_empty());
        let first = samples[0];
        let last = samples[samples.len() - 1];
        if m <= first.size {
            return first.gap;
        }
        if m >= last.size {
            if samples.len() == 1 {
                return last.gap;
            }
            // Extrapolate using the final segment's slope, clamped at zero.
            let prev = samples[samples.len() - 2];
            let slope = (last.gap - prev.gap).as_secs() / (last.size.as_f64() - prev.size.as_f64());
            let extra = (m.as_f64() - last.size.as_f64()) * slope;
            return (last.gap + Time::from_secs(extra)).clamp_non_negative();
        }
        // m lies strictly between two samples.
        let idx = samples.partition_point(|s| s.size < m);
        let hi = samples[idx];
        if hi.size == m {
            return hi.gap;
        }
        let lo = samples[idx - 1];
        let frac = (m.as_f64() - lo.size.as_f64()) / (hi.size.as_f64() - lo.size.as_f64());
        lo.gap + (hi.gap - lo.gap) * frac
    }

    /// The gap function with every per-message cost multiplied by `factor`
    /// (`factor > 1` = a slower link, `< 1` = a faster one): affine gaps scale
    /// `g0` and divide the bandwidth, tables scale every sample, constants
    /// scale the constant. `g(m)` of the result equals `factor · g(m)` of the
    /// original for every `m` — the "scaled link capacity" knob of the
    /// what-if perturbations.
    pub fn scaled(&self, factor: f64) -> GapFunction {
        assert!(
            factor.is_finite() && factor > 0.0,
            "gap scale factor must be positive and finite"
        );
        match self {
            GapFunction::Affine { g0, bandwidth } => GapFunction::Affine {
                g0: *g0 * factor,
                bandwidth: bandwidth / factor,
            },
            GapFunction::Constant { gap } => GapFunction::Constant { gap: *gap * factor },
            GapFunction::Table { samples } => GapFunction::Table {
                samples: samples
                    .iter()
                    .map(|s| GapSample {
                        size: s.size,
                        gap: s.gap * factor,
                    })
                    .collect(),
            },
        }
    }

    /// Absorbs this gap function into a content digest. The variant is tagged
    /// so an `Affine` and a `Constant` that happen to share parameter bits
    /// cannot collide, and table samples are length-prefixed.
    pub fn digest_into(&self, h: &mut Fnv1a) {
        match self {
            GapFunction::Affine { g0, bandwidth } => {
                h.write_u64(0).write_f64(g0.as_secs()).write_f64(*bandwidth);
            }
            GapFunction::Table { samples } => {
                h.write_u64(1).write_u64(samples.len() as u64);
                for s in samples {
                    h.write_u64(s.size.as_bytes()).write_f64(s.gap.as_secs());
                }
            }
            GapFunction::Constant { gap } => {
                h.write_u64(2).write_f64(gap.as_secs());
            }
        }
    }

    /// The effective bandwidth (bytes/second) implied by the gap at size `m`,
    /// i.e. `m / g(m)`. Returns `None` for the empty message or a zero gap.
    pub fn effective_bandwidth(&self, m: MessageSize) -> Option<f64> {
        let g = self.gap(m);
        if m == MessageSize::ZERO || g <= Time::ZERO {
            None
        } else {
            Some(m.as_f64() / g.as_secs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bytes: u64, gap_us: f64) -> GapSample {
        GapSample {
            size: MessageSize::from_bytes(bytes),
            gap: Time::from_micros(gap_us),
        }
    }

    #[test]
    fn affine_gap_grows_linearly_with_size() {
        let g = GapFunction::affine(Time::from_micros(50.0), 1e8); // 100 MB/s
        let small = g.gap(MessageSize::from_bytes(0));
        let large = g.gap(MessageSize::from_mib(1));
        assert_eq!(small, Time::from_micros(50.0));
        // 1 MiB at 100 MB/s is ~10.49 ms plus the 50 µs fixed cost.
        assert!((large.as_millis() - 10.5357).abs() < 0.01);
    }

    #[test]
    fn constant_gap_ignores_size() {
        let g = GapFunction::constant(Time::from_millis(250.0));
        assert_eq!(g.gap(MessageSize::ZERO), Time::from_millis(250.0));
        assert_eq!(g.gap(MessageSize::from_mib(4)), Time::from_millis(250.0));
    }

    #[test]
    fn table_rejects_bad_input() {
        assert_eq!(
            GapFunction::from_samples(vec![]),
            Err(PLogPError::EmptyGapTable)
        );
        let unsorted = vec![sample(1024, 10.0), sample(512, 5.0)];
        assert_eq!(
            GapFunction::from_samples(unsorted),
            Err(PLogPError::UnsortedGapTable { index: 1 })
        );
        let negative = vec![GapSample {
            size: MessageSize::from_bytes(64),
            gap: Time::from_micros(-1.0),
        }];
        assert_eq!(
            GapFunction::from_samples(negative),
            Err(PLogPError::NegativeTime { parameter: "gap" })
        );
    }

    #[test]
    fn table_interpolates_between_samples() {
        let g = GapFunction::from_samples(vec![
            sample(0, 10.0),
            sample(1000, 110.0),
            sample(3000, 210.0),
        ])
        .unwrap();
        // Exact sample points.
        assert_eq!(
            g.gap(MessageSize::from_bytes(1000)),
            Time::from_micros(110.0)
        );
        // Midpoint of the first segment.
        let mid = g.gap(MessageSize::from_bytes(500));
        assert!((mid.as_micros() - 60.0).abs() < 1e-9);
        // Midpoint of the second segment.
        let mid2 = g.gap(MessageSize::from_bytes(2000));
        assert!((mid2.as_micros() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn table_clamps_below_and_extrapolates_above() {
        let g = GapFunction::from_samples(vec![sample(100, 20.0), sample(200, 30.0)]).unwrap();
        assert_eq!(g.gap(MessageSize::from_bytes(10)), Time::from_micros(20.0));
        // Above the last point: slope is 0.1 µs/byte, so 300 B -> 40 µs.
        let above = g.gap(MessageSize::from_bytes(300));
        assert!((above.as_micros() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_table_is_constant() {
        let g = GapFunction::from_samples(vec![sample(1024, 55.0)]).unwrap();
        assert_eq!(g.gap(MessageSize::from_bytes(1)), Time::from_micros(55.0));
        assert_eq!(g.gap(MessageSize::from_mib(8)), Time::from_micros(55.0));
    }

    #[test]
    fn effective_bandwidth_is_size_over_gap() {
        let g = GapFunction::constant(Time::from_secs(1.0));
        let bw = g
            .effective_bandwidth(MessageSize::from_bytes(1_000_000))
            .unwrap();
        assert!((bw - 1_000_000.0).abs() < 1e-6);
        assert!(g.effective_bandwidth(MessageSize::ZERO).is_none());
    }
}
