//! Message sizes in bytes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A message size in bytes.
///
/// The paper sweeps message sizes from a few bytes up to 4.5 MB (Figures 5 and 6)
/// and fixes 1 MB for the Monte-Carlo simulations (Figures 1–4). Keeping the size
/// a dedicated type avoids confusing byte counts with other integers (cluster
/// counts, node counts, iteration counts) in heuristic signatures.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct MessageSize(u64);

impl MessageSize {
    /// The empty message.
    pub const ZERO: MessageSize = MessageSize(0);

    /// Creates a size from a raw byte count.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        MessageSize(bytes)
    }

    /// Creates a size of `kib` binary kilobytes (1 KiB = 1024 B).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        MessageSize(kib * 1024)
    }

    /// Creates a size of `mib` binary megabytes (1 MiB = 1024² B).
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        MessageSize(mib * 1024 * 1024)
    }

    /// The raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size as an `f64` byte count, for bandwidth arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Splits the message into `segments` nearly equal parts (the first
    /// `remainder` parts are one byte larger). Used by pipelined/segmented
    /// collective algorithms. Panics if `segments == 0`.
    pub fn split(self, segments: u32) -> Vec<MessageSize> {
        assert!(segments > 0, "cannot split a message into zero segments");
        let segments = u64::from(segments);
        let base = self.0 / segments;
        let remainder = self.0 % segments;
        (0..segments)
            .map(|i| MessageSize(base + u64::from(i < remainder)))
            .collect()
    }
}

impl fmt::Display for MessageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
            write!(f, "{}MiB", b / (1024 * 1024))
        } else if b >= 1024 && b.is_multiple_of(1024) {
            write!(f, "{}KiB", b / 1024)
        } else {
            write!(f, "{}B", b)
        }
    }
}

impl std::ops::Add for MessageSize {
    type Output = MessageSize;
    fn add(self, rhs: MessageSize) -> MessageSize {
        MessageSize(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(MessageSize::from_kib(4).as_bytes(), 4096);
        assert_eq!(MessageSize::from_mib(1).as_bytes(), 1_048_576);
        assert_eq!(MessageSize::from_bytes(17).as_bytes(), 17);
    }

    #[test]
    fn split_preserves_total_and_balances() {
        let m = MessageSize::from_bytes(1003);
        let parts = m.split(4);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(|p| p.as_bytes()).sum();
        assert_eq!(total, 1003);
        let max = parts.iter().max().unwrap().as_bytes();
        let min = parts.iter().min().unwrap().as_bytes();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "zero segments")]
    fn split_zero_panics() {
        MessageSize::from_bytes(10).split(0);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(MessageSize::from_mib(4).to_string(), "4MiB");
        assert_eq!(MessageSize::from_kib(3).to_string(), "3KiB");
        assert_eq!(MessageSize::from_bytes(999).to_string(), "999B");
    }
}
