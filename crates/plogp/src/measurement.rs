//! Simulated pLogP parameter acquisition.
//!
//! On a real platform the pLogP parameters are obtained with the method of
//! Kielmann, Bal & Verstoep ("Fast measurement of LogP parameters for message
//! passing platforms"): the gap `g(m)` is derived from the saturation round-trip
//! time of a long back-to-back message train, and the latency `L` from the
//! round-trip time of an empty message.
//!
//! We do not have a network interface to measure, so this module reproduces the
//! *procedure* against a synthetic ground-truth link: given a true [`PLogP`]
//! parameter set (plus optional multiplicative noise standing in for OS jitter),
//! it generates the same observations the measurement tool would collect (RTTs of
//! message trains at several sizes) and then runs the estimation algorithm to
//! recover the parameters. Tests assert that the recovered model predicts
//! point-to-point times close to the ground truth, which validates the estimation
//! code path that a real deployment would rely on.

use crate::gap::GapSample;
use crate::{MessageSize, PLogP, PLogPError, Time};
use serde::{Deserialize, Serialize};

/// Configuration of a simulated measurement campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// Message sizes to probe. Defaults to powers of two from 1 B to 4 MiB.
    pub probe_sizes: Vec<MessageSize>,
    /// Number of messages per saturation train. Larger trains average out the
    /// latency contribution; Kielmann's tool uses on the order of 100.
    pub train_length: u32,
    /// Multiplicative noise amplitude applied to each observation (0.0 = exact).
    pub noise_amplitude: f64,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        let mut probe_sizes = Vec::new();
        let mut s: u64 = 1;
        while s <= 4 * 1024 * 1024 {
            probe_sizes.push(MessageSize::from_bytes(s));
            s *= 4;
        }
        MeasurementConfig {
            probe_sizes,
            train_length: 100,
            noise_amplitude: 0.0,
        }
    }
}

/// One observation of a measurement campaign: the round-trip time of an empty
/// message and the saturation time of a message train at each probed size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementRun {
    /// Round-trip time of a zero-byte message (`≈ 2·L + 2·g(0)`).
    pub empty_rtt: Time,
    /// Gap of the smallest message, needed to subtract its contribution from the
    /// empty round-trip time (the real tool measures it from the zero-byte train).
    pub zero_gap: Time,
    /// For each probed size, the observed per-message interval of the saturated
    /// train (`≈ g(m)`).
    pub train_intervals: Vec<(MessageSize, Time)>,
}

impl MeasurementRun {
    /// Simulates the measurement procedure against a ground-truth link.
    ///
    /// `noise` is a deterministic pseudo-noise source: observation `i` is scaled
    /// by `1 + noise_amplitude · noise[i % noise.len()]` where the caller supplies
    /// values in `[-1, 1]`. Passing an empty slice disables noise regardless of
    /// the configured amplitude, which keeps this function free of any RNG
    /// dependency (callers that want randomness draw the values themselves).
    pub fn simulate(truth: &PLogP, config: &MeasurementConfig, noise: &[f64]) -> Self {
        let mut noise_iter = (0..).map(|i| {
            if noise.is_empty() || config.noise_amplitude == 0.0 {
                1.0
            } else {
                1.0 + config.noise_amplitude * noise[i % noise.len()].clamp(-1.0, 1.0)
            }
        });
        let mut scale = |t: Time| t * noise_iter.next().expect("infinite iterator");

        let zero = MessageSize::ZERO;
        let empty_rtt = scale((truth.latency() + truth.gap(zero)) * 2.0);
        let zero_gap = scale(truth.gap(zero));
        let train_intervals = config
            .probe_sizes
            .iter()
            .map(|&m| {
                // A saturated train of k messages takes k·g(m) + L; the tool
                // reports the asymptotic per-message interval, i.e. g(m) plus a
                // vanishing L/k term.
                let k = f64::from(config.train_length.max(1));
                let total = truth.gap(m) * k + truth.latency();
                (m, scale(total / k))
            })
            .collect();
        MeasurementRun {
            empty_rtt,
            zero_gap,
            train_intervals,
        }
    }
}

/// Estimates a [`PLogP`] parameter set from a measurement run.
///
/// The latency is recovered as `L = RTT(0)/2 − g(0)` (clamped at zero), and the
/// gap function as the piecewise-linear interpolation of the observed train
/// intervals, each corrected by removing the residual `L/k` latency share.
pub fn estimate_from_rtt(run: &MeasurementRun, train_length: u32) -> Result<PLogP, PLogPError> {
    if run.train_intervals.len() < 2 {
        return Err(PLogPError::InsufficientSamples {
            got: run.train_intervals.len(),
            needed: 2,
        });
    }
    let latency = (run.empty_rtt / 2.0 - run.zero_gap).clamp_non_negative();
    let k = f64::from(train_length.max(1));
    let mut samples: Vec<GapSample> = run
        .train_intervals
        .iter()
        .map(|&(size, interval)| GapSample {
            size,
            gap: (interval - latency / k).clamp_non_negative(),
        })
        .collect();
    samples.sort_by_key(|s| s.size);
    samples.dedup_by_key(|s| s.size);
    PLogP::from_samples(latency, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ground_truth() -> PLogP {
        // A LAN-like link: 60 µs latency, 1 Gb/s ≈ 125 MB/s, 15 µs fixed gap.
        PLogP::affine(Time::from_micros(60.0), Time::from_micros(15.0), 125e6)
    }

    #[test]
    fn noiseless_estimation_recovers_the_model() {
        let truth = ground_truth();
        let config = MeasurementConfig::default();
        let run = MeasurementRun::simulate(&truth, &config, &[]);
        let estimated = estimate_from_rtt(&run, config.train_length).unwrap();

        // Latency recovered within a microsecond.
        assert!(estimated.latency().abs_diff(truth.latency()) < Time::from_micros(1.0));

        // Point-to-point predictions for sizes between probe points stay within 2 %.
        for &bytes in &[1_000u64, 65_000, 300_000, 1_048_576, 4_000_000] {
            let m = MessageSize::from_bytes(bytes);
            let t_true = truth.point_to_point(m).as_secs();
            let t_est = estimated.point_to_point(m).as_secs();
            let rel = (t_true - t_est).abs() / t_true;
            assert!(
                rel < 0.02,
                "size {bytes}: true {t_true}, estimated {t_est}, rel err {rel}"
            );
        }
    }

    #[test]
    fn noisy_estimation_stays_close() {
        let truth = ground_truth();
        let config = MeasurementConfig {
            noise_amplitude: 0.05,
            ..MeasurementConfig::default()
        };
        // Deterministic "noise" alternating around zero.
        let noise: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 0.8 } else { -0.8 })
            .collect();
        let run = MeasurementRun::simulate(&truth, &config, &noise);
        let estimated = estimate_from_rtt(&run, config.train_length).unwrap();
        let m = MessageSize::from_mib(1);
        let rel = (truth.point_to_point(m).as_secs() - estimated.point_to_point(m).as_secs()).abs()
            / truth.point_to_point(m).as_secs();
        assert!(rel < 0.10, "relative error {rel} too large under 5 % noise");
    }

    #[test]
    fn estimation_requires_at_least_two_samples() {
        let run = MeasurementRun {
            empty_rtt: Time::from_micros(100.0),
            zero_gap: Time::from_micros(10.0),
            train_intervals: vec![(MessageSize::from_kib(1), Time::from_micros(20.0))],
        };
        assert_eq!(
            estimate_from_rtt(&run, 100),
            Err(PLogPError::InsufficientSamples { got: 1, needed: 2 })
        );
    }

    #[test]
    fn default_config_probes_a_wide_size_range() {
        let config = MeasurementConfig::default();
        assert!(config.probe_sizes.first().unwrap().as_bytes() == 1);
        assert!(config.probe_sizes.last().unwrap().as_bytes() >= 4 * 1024 * 1024);
        assert!(config.probe_sizes.len() >= 8);
    }
}
