//! # gridcast-plogp
//!
//! The **parameterised LogP** (pLogP) performance model used throughout the
//! `gridcast` workspace, following Kielmann et al. ("Fast measurement of LogP
//! parameters for message passing platforms") and its use in Barchet-Steffenel &
//! Mounié's broadcast scheduling paper.
//!
//! The model describes a point-to-point message of size `m` between two endpoints
//! with four parameters:
//!
//! * `L`      — end-to-end latency,
//! * `g(m)`   — the *gap* per message of size `m`: the minimum interval between
//!   consecutive message transmissions, i.e. the reciprocal of the effective
//!   bandwidth for that size,
//! * `os(m)`  — send overhead (CPU time the sender is busy),
//! * `or(m)`  — receive overhead (CPU time the receiver is busy).
//!
//! The completion time of a single message of size `m` is modelled, as in the
//! paper, by `L + g(m)`; a sender issuing `k` messages back-to-back is busy for
//! `k·g(m)` before it may do anything else.
//!
//! This crate provides:
//!
//! * [`Time`] — an ergonomic, totally-ordered time quantity (internally seconds),
//! * [`GapFunction`] — piecewise-linear gap functions over message size (plus the
//!   simpler affine `α + β·m` form),
//! * [`PLogP`] — a full per-link parameter set with cost helpers,
//! * [`measurement`] — a simulated reproduction of the RTT-saturation measurement
//!   procedure used to obtain pLogP parameters on a real platform,
//! * [`MessageSize`] — byte counts with convenience constructors,
//! * [`Fnv1a`] — a tiny content-digest hasher over IEEE-754 bit patterns, the
//!   substrate of the grid/problem identity hashes the schedule cache keys on.
//!
//! ## Quick example
//!
//! ```
//! use gridcast_plogp::{PLogP, Time, MessageSize};
//!
//! // A wide-area link: 10 ms latency, 100 MB/s effective bandwidth, 50 µs fixed gap.
//! let link = PLogP::affine(Time::from_millis(10.0), Time::from_micros(50.0), 100e6);
//! let m = MessageSize::from_mib(1);
//! let t = link.point_to_point(m);
//! assert!(t > Time::from_millis(10.0));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod digest;
pub mod error;
pub mod gap;
pub mod measurement;
pub mod message;
pub mod model;
pub mod time;

pub use digest::Fnv1a;
pub use error::PLogPError;
pub use gap::GapFunction;
pub use measurement::{estimate_from_rtt, MeasurementConfig, MeasurementRun};
pub use message::MessageSize;
pub use model::{PLogP, PointToPoint};
pub use time::Time;
