//! Minimal, self-contained replacement for the `rand` crate.
//!
//! Provides the subset of the 0.8-era API the workspace uses: the
//! [`RngCore`]/[`Rng`] traits, [`SeedableRng::seed_from_u64`], and
//! `distributions::{Distribution, Uniform}` for `f64`. Generators are supplied
//! by the sibling in-tree `rand_chacha` crate.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits, as the standard `Open01`-style conversion does.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[low, high)`.
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range");
        let span = high - low;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // span sizes used in this workspace (tests and simulations only).
        low + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it into the full
    /// internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod distributions {
    //! Value distributions over a random source.

    use super::Rng;

    /// Sampling a value of type `T` from a random source.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A uniform distribution over a floating-point range.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform {
        low: f64,
        span: f64,
    }

    impl Uniform {
        /// Uniform over the closed interval `[low, high]`.
        pub fn new_inclusive(low: f64, high: f64) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
            Uniform {
                low,
                span: high - low,
            }
        }

        /// Uniform over the half-open interval `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform {
                low,
                span: high - low,
            }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + rng.gen_f64() * self.span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let dist = Uniform::new_inclusive(2.0, 5.0);
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((2.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
