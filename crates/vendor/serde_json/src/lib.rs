//! Minimal JSON serializer/deserializer over the in-tree `serde` value model.
//!
//! Supports exactly what the workspace round-trips: maps, sequences, strings,
//! booleans, `null` and numbers. Floating-point values are emitted with Rust's
//! shortest round-trippable representation (`{:?}`), so `f64` survives a
//! `to_string` → `from_str` round trip bit-exactly; infinities are encoded as
//! the out-of-range literals `1e999` / `-1e999`, which parse back to the IEEE
//! infinities.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON document"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The parser is recursive
/// descent, so unbounded nesting is a stack-overflow abort — a crash, not an
/// `Err` — on hostile input like `"[[[[…"`. 128 levels is far beyond any
/// document the workspace produces and keeps worst-case stack usage small.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn descend(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(Error::new(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )))
        } else {
            Ok(())
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.descend()?;
                let v = self.parse_map();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.descend()?;
                let v = self.parse_seq();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Unit),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            // An integer literal that fits neither u64 nor i64 must not be
            // silently rounded through f64 — a cache key or byte count losing
            // low bits is corruption, not convenience. (Out-of-range *float*
            // literals like `1e999` still parse to the IEEE infinities; that
            // is this crate's documented infinity encoding.)
            return Err(Error::new(format!("integer literal `{text}` out of range")));
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&1.25f64).unwrap();
        assert_eq!(s, "1.25");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.25);
        let tricky = 0.1f64 + 0.2f64;
        let back: f64 = from_str(&to_string(&tricky).unwrap()).unwrap();
        assert_eq!(back.to_bits(), tricky.to_bits());
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b \"quoted\"".to_string())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn infinity_round_trips() {
        let json = to_string(&f64::INFINITY).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, f64::INFINITY);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.5 extra").is_err());
    }

    #[test]
    fn truncated_documents_error_cleanly() {
        for doc in [
            "",
            "{",
            "[",
            "{\"a\"",
            "{\"a\":",
            "{\"a\":1",
            "{\"a\":1,",
            "[1,2",
            "[1,",
            "\"unterminated",
            "\"ends in backslash\\",
            "tru",
            "nul",
            "-",
        ] {
            assert!(from_str::<Value>(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn bad_escapes_error_cleanly() {
        for doc in [
            r#""\x""#,
            r#""\u""#,
            r#""\u12""#,
            r#""\uzzzz""#,
            r#""\ud800""#, // lone surrogate: not a char
        ] {
            assert!(from_str::<Value>(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn out_of_range_integers_error_instead_of_rounding() {
        // One past u64::MAX / i64::MIN: would lose bits through f64.
        assert!(from_str::<Value>("18446744073709551616").is_err());
        assert!(from_str::<Value>("-9223372036854775809").is_err());
        // The extremes themselves are fine.
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
        // Out-of-range *float* literals stay the documented infinity encoding.
        assert_eq!(from_str::<f64>("1e999").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("-1e999").unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn nesting_is_bounded_not_a_stack_overflow() {
        // Just inside the limit parses.
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str::<Value>(&deep_ok).is_ok());
        // One past the limit is a clean error; 100k past it must not abort.
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(from_str::<Value>(&too_deep).is_err());
        let hostile = "[".repeat(100_000);
        assert!(from_str::<Value>(&hostile).is_err());
        let hostile_maps = "{\"a\":".repeat(100_000);
        assert!(from_str::<Value>(&hostile_maps).is_err());
        // Depth is nesting, not sibling count: wide documents are fine.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert!(from_str::<Value>(&wide).is_ok());
    }

    #[test]
    fn value_round_trips_arbitrary_documents() {
        let doc = r#"{"id":7,"name":"grid","links":[1.5,2.25,null,true],"meta":{"k":"v"}}"#;
        let v: Value = from_str(doc).unwrap();
        assert_eq!(to_string(&v).unwrap(), doc);
    }
}
