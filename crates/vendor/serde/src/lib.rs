//! Minimal, self-contained replacement for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! subset of serde the workspace needs: `Serialize`/`Deserialize` traits backed
//! by a small self-describing [`Value`] data model, plus derive macros
//! (re-exported from the in-tree `serde_derive`). The data model intentionally
//! mirrors serde's: structs become maps, newtype structs are transparent, unit
//! enum variants become strings and data-carrying variants single-entry maps —
//! so the JSON produced by the in-tree `serde_json` looks like what the real
//! serde stack would emit.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Self-describing serialized value: the intermediate representation between
/// Rust types and concrete formats such as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value / JSON `null`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (arrays, tuples, tuple structs).
    Seq(Vec<Value>),
    /// An ordered map (structs, struct enum variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`] by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a self-describing [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {got:?}"))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| Error::custom("integer out of range")),
                    other => Err(type_error("unsigned integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| Error::custom("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| Error::custom("integer out of range")),
                    other => Err(type_error("signed integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(type_error("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Unit,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Unit => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                            },
                        )+))
                    }
                    other => Err(type_error("tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Vec::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (u32, f64) = Deserialize::from_value(&(7u32, 2.5f64).to_value()).unwrap();
        assert_eq!(t, (7, 2.5));
    }

    #[test]
    fn map_field_lookup() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.field("a"), Some(&Value::U64(1)));
        assert_eq!(m.field("b"), None);
    }
}
