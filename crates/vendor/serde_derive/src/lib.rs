//! Derive macros for the in-tree `serde` replacement.
//!
//! Implemented without `syn`/`quote`: the derive input is tokenised by hand,
//! which is sufficient because the macro only needs the type name, the generic
//! parameter names and the field/variant names — never the field types (those
//! are resolved by trait dispatch in the generated code).
//!
//! Supported shapes, matching what the workspace derives on:
//! * structs with named fields (serialized as a map),
//! * tuple structs with one field (transparent, like serde newtypes),
//! * tuple structs with several fields (serialized as a sequence),
//! * enums with unit variants (serialized as the variant name string),
//! * enums with struct or tuple variants (externally tagged single-entry map).
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one used in
//! the workspace is `transparent` on newtypes, which is the default behaviour
//! here anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    data: Data,
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Advances past any `#[...]` attributes (including doc comments).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        i += 2;
    }
    i
}

/// Advances past a `pub` / `pub(crate)` visibility marker.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level (angle-bracket aware) commas to split tuple fields.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for tok in &toks {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1; // past the name
        assert!(
            is_punct(&toks[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: everything until a comma outside angle brackets.
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut fields = Fields::Unit;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            fields = match g.delimiter() {
                Delimiter::Brace => Fields::Named(parse_named_fields(g)),
                Delimiter::Parenthesis => Fields::Tuple(count_tuple_fields(g)),
                _ => Fields::Unit,
            };
            i += 1;
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(toks.get(*i), Some(t) if is_punct(t, '<')) {
        return params;
    }
    *i += 1;
    let mut depth = 1i32;
    let mut expecting_param = true;
    while *i < toks.len() && depth > 0 {
        match &toks[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expecting_param = true,
                ':' if depth == 1 => expecting_param = false,
                '\'' => expecting_param = false, // lifetimes are unsupported
                _ => {}
            },
            TokenTree::Ident(id) if expecting_param && depth == 1 => {
                params.push(id.to_string());
                expecting_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        match toks.get(i) {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
    let is_struct = matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    let generics = parse_generics(&toks, &mut i);

    let data = if is_struct {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Data::Struct(Fields::Unit),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    };

    Input {
        name,
        generics,
        data,
    }
}

fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", input.name)
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}> ",
            bounded.join(", "),
            input.name,
            input.generics.join(", ")
        )
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Struct(Fields::Unit) => "::serde::Value::Unit".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let tokens = format!(
        "{}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(&input, "Serialize")
    );
    tokens
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Data::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple struct {name} too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::Value::Seq(items) => ::std::result::Result::Ok({name}({})), _ => ::std::result::Result::Err(::serde::Error::custom(\"expected sequence for {name}\")) }}",
                inits.join(", ")
            )
        }
        Data::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| {
                    format!(
                        "::serde::Value::Str(s) if s == \"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| {
                    let build = match fields {
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{f}` in {name}::{v}\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "::std::result::Result::Ok({name}::{v} {{ {} }})",
                                inits.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::custom(\"variant {name}::{v} too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "match inner {{ ::serde::Value::Seq(items) => ::std::result::Result::Ok({name}::{v}({})), _ => ::std::result::Result::Err(::serde::Error::custom(\"expected sequence for {name}::{v}\")) }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    };
                    format!(
                        "::serde::Value::Map(entries) if entries.len() == 1 && entries[0].0 == \"{v}\" => {{ let inner = &entries[0].1; {build} }}"
                    )
                })
                .collect();
            format!(
                "match v {{ {} {} _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown variant for {name}\")) }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    let tokens = format!(
        "{}{{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(&input, "Deserialize")
    );
    tokens
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
