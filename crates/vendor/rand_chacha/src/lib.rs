//! In-tree ChaCha8-based generator.
//!
//! Implements the genuine ChaCha stream cipher core with 8 double-rounds. The
//! key is expanded from the 64-bit seed with SplitMix64, so the output stream
//! is *not* bit-compatible with the upstream `rand_chacha` crate — the
//! workspace only relies on determinism (same seed ⇒ same stream), statistical
//! quality and independence between nearby seeds, all of which hold.

use rand::{RngCore, SeedableRng};

/// A deterministic random generator built on the ChaCha8 core.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 4x4 word input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "exhausted".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter starts at zero; nonce derived from the seed as well.
        let nonce = splitmix64(&mut sm);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_is_statistically_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits; expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones));
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
