//! Minimal, self-contained replacement for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, range and `any::<T>()` strategies, tuple and vector
//! composition, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!`/`prop_assert_eq!`.
//! Failing cases are reported with their deterministic case index; there is no
//! shrinking.

/// Deterministic generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case index (deterministic run to run).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15 ^ case.wrapping_mul(0xd134_2543_de82_ef95),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy generating uniformly random values of an integer type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i32, i64);

/// The canonical strategy for `T` (`any::<u64>()` style).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `size` values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Explanation of the failure.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides equal {:?}", l);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }` item
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(case);
                let ($($pat,)+) = ($($crate::Strategy::new_value(&($strategy), &mut rng),)+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {} of {} failed: {}",
                        case + 1,
                        config.cases,
                        e.message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u32..=6, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=6).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose((a, b) in (0u64..5, 0u64..5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0u64..1000;
        let a: Vec<u64> = (0..10)
            .map(|i| crate::Strategy::new_value(&strat, &mut crate::TestRng::for_case(i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| crate::Strategy::new_value(&strat, &mut crate::TestRng::for_case(i)))
            .collect();
        assert_eq!(a, b);
    }
}
