//! Minimal, self-contained replacement for the `criterion` crate.
//!
//! Reproduces the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple measurement
//! strategy: each benchmark runs `sample_size` samples, each sample timing a
//! batch of iterations sized so a sample takes roughly a millisecond, and the
//! median ns/iter is printed. No statistics machinery, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up budget before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line overrides; this stub honours a single positional
    /// substring filter, like `cargo bench -- <filter>`.
    pub fn configure_from_args(mut self) -> Self {
        let filter: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-') && a != "bench")
            .collect();
        if let Some(f) = filter.into_iter().next() {
            self.filter = Some(f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().label;
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, &mut f);
        self
    }

    fn run_one<F>(&self, label: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("bench {label}: no samples recorded");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples[samples.len() / 2];
        println!(
            "bench {label}: median {:.1} ns/iter ({} samples)",
            median,
            samples.len()
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the group's throughput unit (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&label, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, &mut f);
        self
    }

    /// Finishes the group (report separator).
    pub fn finish(self) {}
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id, as in criterion.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times the closure, recording ns/iter samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, measuring the cost of
        // one iteration to size the batches.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            std::hint::black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        // Size each sample's batch so the whole measurement fits the budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let nanos = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(nanos);
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        // Should run without panicking and print a median.
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
