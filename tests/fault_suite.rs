//! End-to-end fault suite: the storm smoke matrix CI runs per seed, and the
//! crash-recovery conformance the paper's predictive pitch depends on.
//!
//! The smoke matrix is seed-parameterised: `FAULT_SMOKE_SEED=<u64>` restricts
//! a run to one seed (CI fans the three defaults out as a job matrix across
//! feature configurations); without it every default seed runs in-process.
//!
//! Two contracts are pinned here, end to end through the facade crate:
//!
//! * **loud, thread-count-independent storms** — every fault-sweep cell
//!   either completes (finite makespan, zero undelivered edges) or reports
//!   [`Outcome::Incomplete`](gridcast::simulator::Outcome::Incomplete)
//!   explicitly, bit-identically from 1 and N worker threads, and
//! * **recovery beats restart** — for every built-in heuristic, splicing a
//!   repair onto the delivered prefix after a mid-broadcast crash completes
//!   strictly earlier than naively rescheduling the whole broadcast at the
//!   crash instant.

use gridcast::core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
use gridcast::plogp::{MessageSize, Time};
use gridcast::simulator::{
    execute_plan_under_faults, fault_sweep, resplice_after_crash, NodeCrash, NodeNetwork, NullSink,
    RetryPolicy, SendPlan, WhatIfRunner,
};
use gridcast::topology::{grid5000_table3, ClusterId, NodeId};

/// The seeds of the smoke matrix: all three by default, exactly one when
/// `FAULT_SMOKE_SEED` is set (the CI matrix runs one seed per job).
fn smoke_seeds() -> Vec<u64> {
    match std::env::var("FAULT_SMOKE_SEED") {
        Ok(raw) => vec![raw
            .trim()
            .parse()
            .expect("FAULT_SMOKE_SEED must be an unsigned integer")],
        Err(_) => vec![11, 23, 47],
    }
}

/// Loss rates of the smoke matrix (the acceptance gate covers p ≤ 0.2).
const SMOKE_LOSS_RATES: [f64; 3] = [0.0, 0.1, 0.2];

/// Retry budget of the smoke matrix: ample for the swept loss rates.
fn smoke_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        ..RetryPolicy::default()
    }
}

#[test]
fn storm_smoke_matrix_is_loud_and_thread_count_independent() {
    let grid = grid5000_table3();
    let runner =
        WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0)).with_retry(smoke_retry());
    for seed in smoke_seeds() {
        let crash_sets = vec![
            Vec::new(),
            vec![NodeCrash {
                node: NodeId(3),
                at: Time::from_millis(5.0),
            }],
        ];
        let scenarios = fault_sweep(seed, &SMOKE_LOSS_RATES, &crash_sets);
        let one = runner.clone().with_threads(1).run(&scenarios);
        let many = runner.clone().with_threads(4).run(&scenarios);
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(
                a.simulated.as_secs().to_bits(),
                b.simulated.as_secs().to_bits(),
                "seed {seed}: simulated makespan diverges across thread counts at cell {}",
                a.scenario
            );
            assert_eq!(a.retries, b.retries, "seed {seed} cell {}", a.scenario);
            assert_eq!(
                a.undelivered, b.undelivered,
                "seed {seed} cell {}",
                a.scenario
            );
            assert_eq!(a.events, b.events, "seed {seed} cell {}", a.scenario);
        }
        for (report, scenario) in many.iter().zip(&scenarios) {
            assert_eq!(
                report.simulated.is_finite(),
                report.undelivered == 0,
                "seed {seed}: cell {} is not loud (finite={}, undelivered={})",
                report.scenario,
                report.simulated.is_finite(),
                report.undelivered
            );
            let faults = scenario.faults.as_ref().expect("every cell carries faults");
            if faults.crashes.is_empty() {
                assert!(
                    report.simulated.is_finite(),
                    "seed {seed}: crash-free cell {} (loss {}) failed to complete under retries",
                    report.scenario,
                    faults.loss
                );
            }
        }
    }
}

/// A faulty replay of one concrete plan is byte-identical per smoke seed:
/// same outcome enum, same reception bit patterns, same fault tallies.
#[test]
fn faulty_execution_replays_byte_identically_per_seed() {
    let grid = grid5000_table3();
    let message = MessageSize::from_mib(1);
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
    let network = NodeNetwork::new(&grid);
    let mut engine = ScheduleEngine::new();
    let schedule = engine.schedule(&problem, HeuristicKind::EcefLaMax);
    let plan = SendPlan::from_grid_schedule(&grid, &schedule);
    for seed in smoke_seeds() {
        let faults = gridcast::simulator::FaultPlan::new(seed)
            .with_loss(0.15)
            .with_duplication(0.1)
            .with_crash(NodeCrash {
                node: NodeId(7),
                at: Time::from_millis(20.0),
            });
        let run = |faults: &gridcast::simulator::FaultPlan| {
            execute_plan_under_faults(
                &network,
                &plan,
                message,
                Time::ZERO,
                faults,
                &smoke_retry(),
                &mut NullSink,
            )
            .expect("the monotone-clock invariant holds under faults")
        };
        let first = run(&faults);
        let second = run(&faults);
        assert_eq!(first, second, "seed {seed}: replay diverged");
        let times = &first.simulation().outcome.receive_times;
        let again = &second.simulation().outcome.receive_times;
        for (a, b) in times.iter().zip(again) {
            assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits(), "seed {seed}");
        }
    }
}

/// Crash-recovery conformance: for every built-in heuristic, the spliced
/// repair (delivered prefix kept, remainder re-planned around the corpse)
/// completes **strictly earlier** than the naive alternative of restarting
/// the whole broadcast from the root at the crash instant.
#[test]
fn resplice_beats_naive_restart_for_every_heuristic() {
    let grid = grid5000_table3();
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
    let mut engine = ScheduleEngine::new();
    for kind in HeuristicKind::all() {
        let original = engine.schedule(&problem, kind);
        // Crash at the median arrival so real work is both committed (the
        // prefix the splice keeps) and outstanding (the repair to plan).
        let mut arrivals: Vec<Time> = original.events.iter().map(|e| e.arrival).collect();
        arrivals.sort();
        let crash_at = arrivals[arrivals.len() / 2];
        // Prefer a relay (a receiver that forwards) — the interesting crash —
        // and fall back to any non-root receiver for relay-free trees.
        let failed = original
            .events
            .iter()
            .map(|e| e.receiver)
            .find(|&r| original.events.iter().any(|e| e.sender == r))
            .unwrap_or_else(|| {
                original
                    .events
                    .last()
                    .expect("non-trivial schedule")
                    .receiver
            });

        let spliced =
            resplice_after_crash(&mut engine, &problem, &original, kind, failed, crash_at);
        let naive = engine.reschedule_excluding(&problem, kind, failed, &[], crash_at);

        let recovered = spliced.makespan_excluding(failed);
        let restarted = naive.makespan_excluding(failed);
        assert!(recovered.is_finite() && restarted.is_finite(), "{kind}");
        assert!(
            recovered < restarted,
            "{kind}: splice ({recovered}) does not beat restart ({restarted})"
        );
    }
}
