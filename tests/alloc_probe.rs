//! Allocation probe for the engine's hot path.
//!
//! A counting `#[global_allocator]` verifies the `ScheduleEngine` claims:
//!
//! * once warm, `makespan` (the Monte-Carlo hot path) performs **zero** heap
//!   allocations — nothing allocates inside the round loop;
//! * `schedule_all` allocates only to materialise the returned `Schedule`s:
//!   the allocation **count** is independent of the cluster count (a single
//!   per-round allocation anywhere would scale it with `n`).

use gridcast::core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
use gridcast::plogp::MessageSize;
use gridcast::topology::{ClusterId, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a relaxed
// atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn problem(clusters: usize, seed: u64) -> BroadcastProblem {
    let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
    BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
}

#[test]
fn warm_makespan_is_allocation_free_at_200_clusters() {
    let kinds = HeuristicKind::all();
    let p = problem(200, 7);
    let mut engine = ScheduleEngine::new();
    // Warm-up: sizes every buffer and instantiates every policy.
    for kind in kinds {
        let _ = engine.makespan(&p, kind);
    }
    for kind in kinds {
        let allocs = count_allocations(|| {
            let span = engine.makespan(&p, kind);
            assert!(span > gridcast::plogp::Time::ZERO);
        });
        assert_eq!(
            allocs, 0,
            "{kind}: warm makespan allocated {allocs} times on a 200-cluster grid"
        );
    }
}

#[test]
fn schedule_all_allocation_count_is_independent_of_cluster_count() {
    let kinds = HeuristicKind::all();
    let small = problem(50, 3);
    let large = problem(200, 4);
    let mut engine = ScheduleEngine::new();
    let mut out = Vec::new();
    // Warm up on the larger instance so buffer growth is behind us.
    engine.schedule_all_into(&large, &kinds, &mut out);
    engine.schedule_all_into(&small, &kinds, &mut out);

    let count = |p: &BroadcastProblem, engine: &mut ScheduleEngine, out: &mut Vec<_>| {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        engine.schedule_all_into(p, &kinds, out);
        ALLOCATIONS.load(Ordering::Relaxed) - before
    };

    let at_small = count(&small, &mut engine, &mut out);
    let at_large = count(&large, &mut engine, &mut out);
    // Materialising each Schedule costs a constant number of allocations
    // (events clone, completion vector, name); the round loop must add none.
    assert_eq!(
        at_small, at_large,
        "allocation count varies with cluster count: {at_small} at 50 vs {at_large} at 200"
    );
    assert!(
        at_large <= kinds.len() as u64 * 8,
        "schedule_all allocates too much: {at_large} for {} schedules",
        kinds.len()
    );
}
