//! Property-based tests over the core invariants of the library, including
//! byte-for-byte parity between the incremental [`ScheduleEngine`] and direct
//! transliterations of the paper's selection rules.

use gridcast::collectives::{binomial_tree, chain_tree, flat_tree, intra_broadcast_time};
use gridcast::core::heuristics::Lookahead;
use gridcast::core::{
    global_minimum, BroadcastProblem, HeuristicKind, Schedule, ScheduleEngine, ScheduleState,
};
use gridcast::plogp::{GapFunction, MessageSize, PLogP, Time};
use gridcast::simulator::{
    execute_plan_under_faults, FaultPlan, NodeCrash, NodeNetwork, Outcome, RetryPolicy, SendPlan,
    TraceEvent,
};
use gridcast::topology::clustering::synthesize_node_matrix;
use gridcast::topology::{
    detect_logical_clusters, Cluster, ClusterId, GridGenerator, LowekampConfig, NodeId,
    ParameterRanges, SquareMatrix,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy producing a random broadcast problem: cluster count, seed and root.
fn problem_strategy() -> impl Strategy<Value = (BroadcastProblem, usize)> {
    (2usize..=12, any::<u64>(), 0usize..12).prop_map(|(clusters, seed, root_idx)| {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        (
            BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1)),
            clusters,
        )
    })
}

/// Reference implementations: straight transliterations of the pre-engine
/// per-heuristic round loops (full `O(|A|·|B|)` rescans, the paper's formulas
/// verbatim). The engine must reproduce their schedules **byte-identically** —
/// same events, same floating-point times, same tie-breaks.
mod reference {
    use super::*;
    use gridcast::topology::ClusterId;

    pub fn schedule(kind: HeuristicKind, problem: &BroadcastProblem) -> Schedule {
        let mut state = ScheduleState::new(problem);
        match kind {
            HeuristicKind::FlatTree => {
                let root = problem.root;
                let receivers: Vec<_> = problem.cluster_ids().filter(|&c| c != root).collect();
                for receiver in receivers {
                    state.commit(root, receiver);
                }
            }
            HeuristicKind::Fef => {
                while !state.is_complete() {
                    let mut best: Option<(ClusterId, ClusterId)> = None;
                    let mut best_weight = Time::INFINITY;
                    for sender in state.set_a().collect::<Vec<_>>() {
                        for receiver in state.set_b().collect::<Vec<_>>() {
                            let weight = problem.latency(sender, receiver);
                            if weight < best_weight {
                                best_weight = weight;
                                best = Some((sender, receiver));
                            }
                        }
                    }
                    let (s, r) = best.unwrap();
                    state.commit(s, r);
                }
            }
            HeuristicKind::Ecef
            | HeuristicKind::EcefLa
            | HeuristicKind::EcefLaMin
            | HeuristicKind::EcefLaMax => {
                let lookahead = match kind {
                    HeuristicKind::Ecef => Lookahead::None,
                    HeuristicKind::EcefLa => Lookahead::MinEdge,
                    HeuristicKind::EcefLaMin => Lookahead::MinEdgePlusIntra,
                    _ => Lookahead::MaxEdgePlusIntra,
                };
                while !state.is_complete() {
                    let set_b: Vec<ClusterId> = state.set_b().collect();
                    let mut best: Option<(ClusterId, ClusterId)> = None;
                    let mut best_score = Time::INFINITY;
                    for &receiver in &set_b {
                        let remaining: Vec<ClusterId> =
                            set_b.iter().copied().filter(|&k| k != receiver).collect();
                        let f = lookahead.evaluate(problem, receiver, &remaining);
                        for sender in state.set_a().collect::<Vec<_>>() {
                            let score = state.completion_estimate(sender, receiver) + f;
                            if score < best_score {
                                best_score = score;
                                best = Some((sender, receiver));
                            }
                        }
                    }
                    let (s, r) = best.unwrap();
                    state.commit(s, r);
                }
            }
            HeuristicKind::BottomUp => {
                while !state.is_complete() {
                    let mut chosen: Option<(ClusterId, ClusterId)> = None;
                    let mut chosen_score = Time::ZERO - Time::from_secs(1.0);
                    for receiver in state.set_b().collect::<Vec<_>>() {
                        let (best_sender, best_cost) = state
                            .set_a()
                            .map(|sender| {
                                (
                                    sender,
                                    state.completion_estimate(sender, receiver)
                                        + problem.intra_time(receiver),
                                )
                            })
                            .min_by_key(|&(_, cost)| cost)
                            .expect("set A is never empty");
                        if chosen.is_none() || best_cost > chosen_score {
                            chosen_score = best_cost;
                            chosen = Some((best_sender, receiver));
                        }
                    }
                    let (s, r) = chosen.unwrap();
                    state.commit(s, r);
                }
            }
        }
        state.finish(kind.name())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine emits **byte-identical** schedules to the reference
    /// implementations on random Table-2 grids up to 128 clusters: identical
    /// event sequences (senders, receivers, start/arrival bit patterns),
    /// completion times and JSON serialisations. The range deliberately
    /// exceeds the 100-cluster grid whose rescan telemetry is pinned by the
    /// bench crate, so the k-best repair/rescan machinery is exercised well
    /// past the sizes where every invalidation still repairs in place.
    #[test]
    fn engine_matches_reference_implementations_exactly(
        clusters in 2usize..=128,
        seed in any::<u64>(),
        root_idx in 0usize..128,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1));
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let fast = engine.schedule(&problem, kind);
            let slow = reference::schedule(kind, &problem);
            prop_assert_eq!(
                fast.events.len(), slow.events.len(),
                "{} event count mismatch", kind
            );
            for (i, (a, b)) in fast.events.iter().zip(&slow.events).enumerate() {
                prop_assert!(
                    a.sender == b.sender
                        && a.receiver == b.receiver
                        && a.start.as_secs().to_bits() == b.start.as_secs().to_bits()
                        && a.arrival.as_secs().to_bits() == b.arrival.as_secs().to_bits(),
                    "{} diverges at event {} ({:?} vs {:?}) on {} clusters",
                    kind, i, a, b, clusters
                );
            }
            prop_assert_eq!(&fast, &slow, "{} schedules differ structurally", kind);
            let fast_json = serde_json::to_string(&fast).unwrap();
            let slow_json = serde_json::to_string(&slow).unwrap();
            prop_assert_eq!(fast_json, slow_json, "{} JSON differs", kind);
        }
    }

    /// The row width `K` is a pure performance knob: schedules are
    /// **byte-identical** for every `K ≥ 1`, so the adaptive default
    /// (`adaptive_k_best`) can never change an answer relative to any fixed
    /// override. Exercised across all seven policies up to 128 clusters —
    /// `K = 1` forces the rescan walk on every invalidation, `K = 16`
    /// (the probe cap) almost always repairs in place, and the adaptive
    /// engine sits between; all three must agree to the bit.
    #[test]
    fn adaptive_k_matches_every_fixed_k_byte_identically(
        clusters in 2usize..=128,
        seed in any::<u64>(),
        root_idx in 0usize..128,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1));
        let mut adaptive = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let baseline = adaptive.schedule(&problem, kind);
            for k in [1usize, 2, 5, gridcast::core::DEFAULT_K_BEST] {
                let fixed = ScheduleEngine::with_k_best(k).schedule(&problem, kind);
                prop_assert_eq!(
                    baseline.events.len(), fixed.events.len(),
                    "{} event count differs at K={}", kind, k
                );
                for (i, (a, b)) in baseline.events.iter().zip(&fixed.events).enumerate() {
                    prop_assert!(
                        a.sender == b.sender
                            && a.receiver == b.receiver
                            && a.start.as_secs().to_bits() == b.start.as_secs().to_bits()
                            && a.arrival.as_secs().to_bits() == b.arrival.as_secs().to_bits(),
                        "{} diverges from K={} at event {} ({:?} vs {:?}) on {} clusters",
                        kind, k, i, a, b, clusters
                    );
                }
            }
        }
    }

    /// Every heuristic produces a valid schedule covering each cluster exactly
    /// once, and its makespan respects the analytic lower bound.
    #[test]
    fn schedules_are_valid_and_bounded((problem, clusters) in problem_strategy()) {
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            prop_assert!(schedule.validate(&problem).is_ok(), "{kind}");
            prop_assert_eq!(schedule.num_transfers(), clusters - 1);
            prop_assert!(schedule.makespan() >= problem.lower_bound());
            prop_assert!(schedule.makespan().is_finite());
        }
    }

    /// The per-instance global minimum is a lower envelope of every heuristic.
    #[test]
    fn global_minimum_is_a_lower_envelope((problem, _) in problem_strategy()) {
        let reference = global_minimum(&problem, &HeuristicKind::all());
        for kind in HeuristicKind::all() {
            prop_assert!(kind.schedule(&problem).makespan() >= reference);
        }
    }

    /// Schedule events are causally ordered: every sender already holds the
    /// message when its transfer starts, and arrivals are start + g + L.
    #[test]
    fn schedule_events_are_causal((problem, _) in problem_strategy()) {
        let schedule = HeuristicKind::EcefLaMax.schedule(&problem);
        let mut ready = vec![None; problem.num_clusters()];
        ready[problem.root.index()] = Some(Time::ZERO);
        for event in &schedule.events {
            let sender_ready = ready[event.sender.index()];
            prop_assert!(sender_ready.is_some(), "sender had no message");
            prop_assert!(event.start + Time::from_micros(1.0) >= sender_ready.unwrap());
            let expected = event.start + problem.transfer(event.sender, event.receiver);
            prop_assert!(event.arrival.abs_diff(expected) < Time::from_micros(1.0));
            ready[event.receiver.index()] = Some(event.arrival);
        }
    }

    /// Broadcast trees of any size span all ranks, and the binomial tree never
    /// needs more completion time than the flat or chain trees under a
    /// latency-free unit-gap model (where its round count is provably optimal).
    #[test]
    fn tree_shapes_are_spanning_and_binomial_is_fastest(size in 1usize..=200) {
        let unit = PLogP::constant(Time::ZERO, Time::from_secs(1.0));
        let m = MessageSize::from_kib(4);
        let binomial = binomial_tree(size);
        let flat = flat_tree(size);
        let chain = chain_tree(size);
        for tree in [&binomial, &flat, &chain] {
            prop_assert!(tree.validate().is_ok());
            prop_assert_eq!(tree.size(), size);
        }
        let b = binomial.completion_time(&unit, m);
        prop_assert!(b <= flat.completion_time(&unit, m));
        prop_assert!(b <= chain.completion_time(&unit, m));
    }

    /// The intra-cluster broadcast-time predictor is monotone in message size
    /// and zero for singleton clusters.
    #[test]
    fn intra_time_is_monotone(size in 1u32..=128, kib_small in 1u64..=64, factor in 2u64..=64) {
        let plogp = PLogP::affine(Time::from_micros(60.0), Time::from_micros(20.0), 110e6);
        let cluster = Cluster::with_plogp(ClusterId(0), "c", size, plogp);
        let small = intra_broadcast_time(&cluster, MessageSize::from_kib(kib_small));
        let large = intra_broadcast_time(&cluster, MessageSize::from_kib(kib_small * factor));
        if size == 1 {
            prop_assert_eq!(small, Time::ZERO);
            prop_assert_eq!(large, Time::ZERO);
        } else {
            prop_assert!(small <= large);
            prop_assert!(small > Time::ZERO);
        }
    }

    /// Piecewise-linear gap functions interpolate within the sampled bounds.
    #[test]
    fn gap_interpolation_stays_within_sample_bounds(
        gaps in proptest::collection::vec(1.0f64..10_000.0, 2..8),
        query in 0u64..2_000_000,
    ) {
        let samples: Vec<_> = gaps
            .iter()
            .enumerate()
            .map(|(i, &g)| gridcast::plogp::gap::GapSample {
                size: MessageSize::from_kib(((i as u64) + 1) * 128),
                gap: Time::from_micros(g),
            })
            .collect();
        let last_size = samples.last().unwrap().size;
        let function = GapFunction::from_samples(samples.clone()).unwrap();
        let q = MessageSize::from_bytes(query.min(last_size.as_bytes()));
        let value = function.gap(q);
        let min = samples.iter().map(|s| s.gap).min().unwrap();
        let max = samples.iter().map(|s| s.gap).max().unwrap();
        prop_assert!(value >= min && value <= max,
            "interpolated {value} outside [{min}, {max}]");
    }

    /// Logical-cluster detection is a partition: every node appears in exactly
    /// one cluster, and the reported sizes sum to the node count.
    #[test]
    fn clustering_is_a_partition(sizes in proptest::collection::vec(1u32..12, 2..5), tolerance in 0.0f64..1.0) {
        let n = sizes.len();
        // Build a cluster-level latency matrix: distinct sites far apart.
        let mut latency = SquareMatrix::filled(n, 10_000.0);
        for i in 0..n {
            latency[(i, i)] = 50.0;
        }
        let node_matrix = synthesize_node_matrix(&sizes, &latency);
        let clustering = detect_logical_clusters(&node_matrix, LowekampConfig { tolerance });
        let total: usize = sizes.iter().map(|&s| s as usize).sum();
        prop_assert_eq!(clustering.assignment.len(), total);
        prop_assert_eq!(clustering.sizes().iter().sum::<usize>(), total);
        for (cluster_idx, members) in clustering.clusters.iter().enumerate() {
            for &node in members {
                prop_assert_eq!(clustering.assignment[node], cluster_idx);
            }
        }
    }

    /// Fault-boundary totality of the faulty executor: however the storm is
    /// parameterised — loss on every attempt, minimal retry budgets (so
    /// crashes land *after* the last attempt), zero-jitter timeouts that tie
    /// exactly with arrivals, one crash at a bit-exact fault-free reception
    /// instant and another at an arbitrary fraction of the makespan
    /// (including past completion) — the run never produces a NaN time,
    /// never lets the clock run backwards (the always-on queue check would
    /// surface it as a structured `Err`), and is always **loud**: finite
    /// completion if and only if no plan edge went undelivered.
    #[test]
    fn faulty_execution_is_total_loud_and_monotone(
        clusters in 2usize..=8,
        seed in any::<u64>(),
        kind_idx in 0usize..8,
        loss in 0.0f64..1.0,
        duplication in 0.0f64..1.0,
        max_attempts in 1u32..=4,
        jitter in 0.0f64..0.5,
        crash_node in 0u32..64,
        crash_frac in 0.0f64..1.5,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        let kinds = HeuristicKind::all();
        let kind = kinds[kind_idx % kinds.len()];
        let mut engine = ScheduleEngine::new();
        let schedule = engine.schedule(&problem, kind);
        let plan = SendPlan::from_grid_schedule(&grid, &schedule);
        let network = NodeNetwork::new(&grid);

        // One crash pinned bit-exactly to a fault-free reception instant (the
        // arrival-at-crash-instant tie), one scaled off the makespan so the
        // window covers both mid-broadcast and after-the-last-attempt.
        let clean = gridcast::simulator::execute_plan(
            &network, &plan, problem.message, Time::ZERO, None,
        );
        let nodes = grid.num_nodes();
        let tie_node = NodeId(1 + crash_node % (nodes - 1));
        let frac_node = NodeId(1 + (crash_node / 2) % (nodes - 1));
        let faults = FaultPlan::new(seed)
            .with_loss(loss)
            .with_duplication(duplication)
            .with_crash(NodeCrash {
                node: tie_node,
                at: clean.receive_time(tie_node).max(Time::ZERO),
            })
            .with_crash(NodeCrash {
                node: frac_node,
                at: clean.completion * crash_frac,
            });
        let retry = RetryPolicy { max_attempts, jitter, ..RetryPolicy::default() };

        let mut trace: Vec<TraceEvent> = Vec::new();
        let run = execute_plan_under_faults(
            &network, &plan, problem.message, Time::ZERO, &faults, &retry, &mut trace,
        );
        let outcome = match run {
            Ok(outcome) => outcome,
            Err(e) => return Err(TestCaseError::fail(format!("clock invariant broken: {e}"))),
        };

        for event in &trace {
            prop_assert!(!event.time.as_secs().is_nan(), "NaN trace time: {}", event);
        }
        for w in trace.windows(2) {
            prop_assert!(w[0].time <= w[1].time, "clock regressed: {} then {}", w[0], w[1]);
        }
        let sim = outcome.simulation();
        for t in &sim.outcome.receive_times {
            prop_assert!(!t.as_secs().is_nan(), "NaN reception time");
        }
        match &outcome {
            Outcome::Complete(sim) => {
                prop_assert!(sim.outcome.completion.is_finite());
                prop_assert!(sim.outcome.receive_times.iter().all(|t| t.is_finite()));
                prop_assert!(sim.unreached().is_empty());
            }
            Outcome::Incomplete { undelivered, partial } => {
                prop_assert!(!partial.outcome.completion.is_finite());
                prop_assert!(!undelivered.is_empty(), "silent incompleteness");
            }
        }
    }

    /// Random grid generation always respects the configured parameter ranges.
    #[test]
    fn generated_grids_respect_ranges(clusters in 2usize..=20, seed in any::<u64>()) {
        let ranges = ParameterRanges::table2();
        let grid = GridGenerator::with_ranges(ranges.clone())
            .generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let m = MessageSize::from_mib(1);
        for i in grid.cluster_ids() {
            for j in grid.cluster_ids() {
                if i == j { continue; }
                prop_assert!(grid.latency(i, j) >= ranges.latency.0);
                prop_assert!(grid.latency(i, j) <= ranges.latency.1);
                prop_assert!(grid.gap(i, j, m) >= ranges.gap.0);
                prop_assert!(grid.gap(i, j, m) <= ranges.gap.1);
            }
        }
    }
}

proptest! {
    // Each case sweeps all eight straddle sizes and up to three widths per
    // policy at up to 769 clusters, so a handful of random grids is already
    // several hundred engine runs; more cases buy little beyond wall clock.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The per-policy K schedule ([`gridcast::core::adaptive_k_best_for`])
    /// steps its candidate-row widths at 192/193, 256/257, 512/513 and
    /// 768/769 clusters, and different policies resolve to different widths
    /// at the same size (static rows stay at K = 1, gradually decaying
    /// policies step 2 → 4 → 6, steeply decaying ones 2 → 4 → 8). K must
    /// remain a pure performance knob through all of that: at every size
    /// straddling a breakpoint, every policy's adaptive schedule is
    /// **byte-identical** to a fixed [`ScheduleEngine::with_k_best`] run at
    /// the width the table resolves to — and at the width the old flat
    /// schedule (2 up to 256 clusters, 4 above) would have picked, so the
    /// table migration itself is pinned as answer-preserving.
    #[test]
    fn per_policy_k_schedule_is_byte_identical_at_every_breakpoint(
        seed in any::<u64>(),
        root_idx in 0usize..192,
    ) {
        use gridcast::core::{adaptive_k_best_for, RowDecay};

        // The decay class each heuristic's policy declares (`row_decay`),
        // restated here so the sweep exercises the exact widths the engine
        // resolves — byte-identity holds for *any* K, so a policy changing
        // class later cannot break this test, only shift which widths it
        // happens to cover.
        let decay_of = |kind: HeuristicKind| match kind {
            HeuristicKind::FlatTree | HeuristicKind::Fef => RowDecay::Static,
            HeuristicKind::Ecef => RowDecay::Gradual,
            _ => RowDecay::Steep,
        };

        let mut adaptive = ScheduleEngine::new();
        for clusters in [192usize, 193, 256, 257, 512, 513, 768, 769] {
            let grid = GridGenerator::table2()
                .generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
            let root = ClusterId(root_idx % clusters);
            let problem = BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1));
            for kind in HeuristicKind::all() {
                let baseline = adaptive.schedule(&problem, kind);
                let new_k = adaptive_k_best_for(decay_of(kind), clusters);
                let old_k = if clusters <= 256 { 2 } else { 4 };
                let mut widths = vec![new_k];
                if old_k != new_k {
                    widths.push(old_k);
                }
                for k in widths {
                    let fixed = ScheduleEngine::with_k_best(k).schedule(&problem, kind);
                    prop_assert_eq!(
                        baseline.events.len(), fixed.events.len(),
                        "{} event count differs at K={} on {} clusters", kind, k, clusters
                    );
                    for (i, (a, b)) in baseline.events.iter().zip(&fixed.events).enumerate() {
                        prop_assert!(
                            a.sender == b.sender
                                && a.receiver == b.receiver
                                && a.start.as_secs().to_bits() == b.start.as_secs().to_bits()
                                && a.arrival.as_secs().to_bits() == b.arrival.as_secs().to_bits(),
                            "{} diverges from K={} at event {} ({:?} vs {:?}) on {} clusters",
                            kind, k, i, a, b, clusters
                        );
                    }
                }
            }
        }
    }
}
