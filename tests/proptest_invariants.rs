//! Property-based tests over the core invariants of the library.

use gridcast::collectives::{binomial_tree, chain_tree, flat_tree, intra_broadcast_time};
use gridcast::core::{global_minimum, BroadcastProblem, HeuristicKind};
use gridcast::plogp::{GapFunction, MessageSize, PLogP, Time};
use gridcast::topology::clustering::synthesize_node_matrix;
use gridcast::topology::{
    detect_logical_clusters, Cluster, ClusterId, GridGenerator, LowekampConfig, ParameterRanges,
    SquareMatrix,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy producing a random broadcast problem: cluster count, seed and root.
fn problem_strategy() -> impl Strategy<Value = (BroadcastProblem, usize)> {
    (2usize..=12, any::<u64>(), 0usize..12).prop_map(|(clusters, seed, root_idx)| {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        (
            BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1)),
            clusters,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every heuristic produces a valid schedule covering each cluster exactly
    /// once, and its makespan respects the analytic lower bound.
    #[test]
    fn schedules_are_valid_and_bounded((problem, clusters) in problem_strategy()) {
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            prop_assert!(schedule.validate(&problem).is_ok(), "{kind}");
            prop_assert_eq!(schedule.num_transfers(), clusters - 1);
            prop_assert!(schedule.makespan() >= problem.lower_bound());
            prop_assert!(schedule.makespan().is_finite());
        }
    }

    /// The per-instance global minimum is a lower envelope of every heuristic.
    #[test]
    fn global_minimum_is_a_lower_envelope((problem, _) in problem_strategy()) {
        let reference = global_minimum(&problem, &HeuristicKind::all());
        for kind in HeuristicKind::all() {
            prop_assert!(kind.schedule(&problem).makespan() >= reference);
        }
    }

    /// Schedule events are causally ordered: every sender already holds the
    /// message when its transfer starts, and arrivals are start + g + L.
    #[test]
    fn schedule_events_are_causal((problem, _) in problem_strategy()) {
        let schedule = HeuristicKind::EcefLaMax.schedule(&problem);
        let mut ready = vec![None; problem.num_clusters()];
        ready[problem.root.index()] = Some(Time::ZERO);
        for event in &schedule.events {
            let sender_ready = ready[event.sender.index()];
            prop_assert!(sender_ready.is_some(), "sender had no message");
            prop_assert!(event.start + Time::from_micros(1.0) >= sender_ready.unwrap());
            let expected = event.start + problem.transfer(event.sender, event.receiver);
            prop_assert!(event.arrival.abs_diff(expected) < Time::from_micros(1.0));
            ready[event.receiver.index()] = Some(event.arrival);
        }
    }

    /// Broadcast trees of any size span all ranks, and the binomial tree never
    /// needs more completion time than the flat or chain trees under a
    /// latency-free unit-gap model (where its round count is provably optimal).
    #[test]
    fn tree_shapes_are_spanning_and_binomial_is_fastest(size in 1usize..=200) {
        let unit = PLogP::constant(Time::ZERO, Time::from_secs(1.0));
        let m = MessageSize::from_kib(4);
        let binomial = binomial_tree(size);
        let flat = flat_tree(size);
        let chain = chain_tree(size);
        for tree in [&binomial, &flat, &chain] {
            prop_assert!(tree.validate().is_ok());
            prop_assert_eq!(tree.size(), size);
        }
        let b = binomial.completion_time(&unit, m);
        prop_assert!(b <= flat.completion_time(&unit, m));
        prop_assert!(b <= chain.completion_time(&unit, m));
    }

    /// The intra-cluster broadcast-time predictor is monotone in message size
    /// and zero for singleton clusters.
    #[test]
    fn intra_time_is_monotone(size in 1u32..=128, kib_small in 1u64..=64, factor in 2u64..=64) {
        let plogp = PLogP::affine(Time::from_micros(60.0), Time::from_micros(20.0), 110e6);
        let cluster = Cluster::with_plogp(ClusterId(0), "c", size, plogp);
        let small = intra_broadcast_time(&cluster, MessageSize::from_kib(kib_small));
        let large = intra_broadcast_time(&cluster, MessageSize::from_kib(kib_small * factor));
        if size == 1 {
            prop_assert_eq!(small, Time::ZERO);
            prop_assert_eq!(large, Time::ZERO);
        } else {
            prop_assert!(small <= large);
            prop_assert!(small > Time::ZERO);
        }
    }

    /// Piecewise-linear gap functions interpolate within the sampled bounds.
    #[test]
    fn gap_interpolation_stays_within_sample_bounds(
        gaps in proptest::collection::vec(1.0f64..10_000.0, 2..8),
        query in 0u64..2_000_000,
    ) {
        let samples: Vec<_> = gaps
            .iter()
            .enumerate()
            .map(|(i, &g)| gridcast::plogp::gap::GapSample {
                size: MessageSize::from_kib(((i as u64) + 1) * 128),
                gap: Time::from_micros(g),
            })
            .collect();
        let last_size = samples.last().unwrap().size;
        let function = GapFunction::from_samples(samples.clone()).unwrap();
        let q = MessageSize::from_bytes(query.min(last_size.as_bytes()));
        let value = function.gap(q);
        let min = samples.iter().map(|s| s.gap).min().unwrap();
        let max = samples.iter().map(|s| s.gap).max().unwrap();
        prop_assert!(value >= min && value <= max,
            "interpolated {value} outside [{min}, {max}]");
    }

    /// Logical-cluster detection is a partition: every node appears in exactly
    /// one cluster, and the reported sizes sum to the node count.
    #[test]
    fn clustering_is_a_partition(sizes in proptest::collection::vec(1u32..12, 2..5), tolerance in 0.0f64..1.0) {
        let n = sizes.len();
        // Build a cluster-level latency matrix: distinct sites far apart.
        let mut latency = SquareMatrix::filled(n, 10_000.0);
        for i in 0..n {
            latency[(i, i)] = 50.0;
        }
        let node_matrix = synthesize_node_matrix(&sizes, &latency);
        let clustering = detect_logical_clusters(&node_matrix, LowekampConfig { tolerance });
        let total: usize = sizes.iter().map(|&s| s as usize).sum();
        prop_assert_eq!(clustering.assignment.len(), total);
        prop_assert_eq!(clustering.sizes().iter().sum::<usize>(), total);
        for (cluster_idx, members) in clustering.clusters.iter().enumerate() {
            for &node in members {
                prop_assert_eq!(clustering.assignment[node], cluster_idx);
            }
        }
    }

    /// Random grid generation always respects the configured parameter ranges.
    #[test]
    fn generated_grids_respect_ranges(clusters in 2usize..=20, seed in any::<u64>()) {
        let ranges = ParameterRanges::table2();
        let grid = GridGenerator::with_ranges(ranges.clone())
            .generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let m = MessageSize::from_mib(1);
        for i in grid.cluster_ids() {
            for j in grid.cluster_ids() {
                if i == j { continue; }
                prop_assert!(grid.latency(i, j) >= ranges.latency.0);
                prop_assert!(grid.latency(i, j) <= ranges.latency.1);
                prop_assert!(grid.gap(i, j, m) >= ranges.gap.0);
                prop_assert!(grid.gap(i, j, m) <= ranges.gap.1);
            }
        }
    }
}
