//! Smoke tests of the experiment harness at reduced iteration counts: every
//! figure and table generator runs end-to-end and produces the expected series.

use gridcast::experiments::{figures, tables, ExperimentConfig};

fn quick() -> ExperimentConfig {
    ExperimentConfig::quick().with_iterations(60)
}

#[test]
fn tables_render() {
    assert!(tables::table1().contains("Level 0"));
    assert!(tables::table2().contains("3000 ms"));
    let t3 = tables::table3();
    assert!(t3.contains("Cluster 5"));
    assert!(t3.contains("6 logical clusters"));
}

#[test]
fn figure1_and_figure2_have_all_heuristics() {
    let fig1 = figures::completion_sweep(
        "f1",
        &[2, 6],
        &gridcast::core::HeuristicKind::all(),
        &quick(),
    );
    assert_eq!(fig1.series.len(), 7);
    assert_eq!(fig1.x_values(), vec![2.0, 6.0]);
    for series in &fig1.series {
        assert!(series.points.iter().all(|p| p.y.is_finite() && p.y > 0.0));
    }
}

#[test]
fn figure4_hit_counts_are_consistent() {
    let fig = figures::hit_rate_sweep(
        "f4",
        &[6],
        &gridcast::core::HeuristicKind::ecef_family(),
        &gridcast::core::HeuristicKind::ecef_family(),
        &quick(),
    );
    assert_eq!(fig.series.len(), 4);
    let total: f64 = fig.series.iter().map(|s| s.points[0].y).sum();
    // At least one heuristic hits the global minimum in every iteration.
    assert!(total >= 60.0);
}

#[test]
fn figure5_and_figure6_cover_the_message_axis() {
    let fig5 = figures::fig5::run(&quick());
    let fig6 = figures::fig6::run(&quick());
    assert_eq!(fig5.x_values().len(), 10);
    assert_eq!(fig6.x_values().len(), 10);
    assert_eq!(fig5.series.len(), 7);
    assert_eq!(fig6.series.len(), 8); // + Default LAM
    assert!(fig6.series_by_label("Default LAM").is_some());
}

#[test]
fn mixed_strategy_figure_runs() {
    let fig = figures::mixed::run(&quick());
    assert_eq!(fig.series.len(), 3);
    assert!(fig.series_by_label("Mixed").is_some());
}

#[test]
fn gather_figure_shows_the_duality_and_exchange_scaling_runs() {
    // Reduced sizes of the `gather` experiment bin's two figures.
    let fig = figures::gather::gather_comparison("smoke", &[16, 64]);
    assert_eq!(fig.series.len(), 4);
    let gather = fig
        .series_by_label("Gather relay (earliest completion)")
        .unwrap();
    let dual = fig
        .series_by_label("Scatter dual (earliest completion)")
        .unwrap();
    for (g, s) in gather.points.iter().zip(&dual.points) {
        assert!(g.y.is_finite() && g.y > 0.0);
        // GRID'5000 is symmetric: the time-reversal duality makes the gather
        // and scatter curves identical to the last bit.
        assert_eq!(g.y.to_bits(), s.y.to_bits());
    }
    let exchange = figures::gather::exchange_scaling("smoke", &[6, 10]);
    assert_eq!(exchange.series.len(), 2);
    assert_eq!(exchange.x_values(), vec![30.0, 90.0]);
}

#[test]
fn whatif_figure_repicks_the_best_schedule_under_degradation() {
    // Reduced factor sweep of the `whatif` experiment bin.
    let fig = figures::whatif::degradation_sweep("smoke", &[1.0, 16.0]);
    assert_eq!(fig.series.len(), 9); // 7 heuristics + predicted/simulated best
    let best = fig.series_by_label("Best (predicted)").unwrap();
    let flat = fig.series_by_label("Flat Tree").unwrap();
    // The winner's prediction is the pointwise minimum and stays far below
    // the flat tree once the root uplink is degraded (the flat tree pays the
    // degraded gap once per cluster).
    assert!(best.points[1].y < flat.points[1].y);
    let simulated = fig.series_by_label("Best (simulated)").unwrap();
    for (p, s) in best.points.iter().zip(&simulated.points) {
        assert!(s.y.is_finite() && s.y > 0.0);
        // Prediction and node-level execution track each other within the
        // same generous band `predictions_track_measurements` uses (the
        // prediction prices local phases with the paper's T_i, the execution
        // runs binomial trees).
        assert!((s.y - p.y).abs() / p.y < 0.35);
    }
}
