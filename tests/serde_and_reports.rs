//! Serialisation round-trips and report rendering across crates.

use gridcast::core::{BroadcastProblem, HeuristicKind, Schedule};
use gridcast::experiments::{FigureResult, Series};
use gridcast::prelude::*;
use gridcast::topology::Grid5000Spec;

#[test]
fn grid_and_schedule_round_trip_through_json() {
    let grid = grid5000_table3();
    let json = serde_json::to_string(&grid).expect("grid serialises");
    let back: Grid = serde_json::from_str(&json).expect("grid deserialises");
    assert_eq!(grid, back);

    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
    let schedule = HeuristicKind::BottomUp.schedule(&problem);
    let json = serde_json::to_string(&schedule).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(schedule, back);
    assert!(back.validate(&problem).is_ok());
}

#[test]
fn problem_round_trips_and_stays_consistent() {
    let grid = grid5000_table3();
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(5), MessageSize::from_mib(2));
    let json = serde_json::to_string(&problem).unwrap();
    let back: BroadcastProblem = serde_json::from_str(&json).unwrap();
    assert_eq!(problem, back);
    // Scheduling the deserialised problem gives the same makespan.
    let a = HeuristicKind::EcefLaMin.schedule(&problem).makespan();
    let b = HeuristicKind::EcefLaMin.schedule(&back).makespan();
    assert_eq!(a, b);
}

#[test]
fn grid5000_spec_round_trips() {
    let spec = Grid5000Spec::table3();
    let json = serde_json::to_string(&spec).unwrap();
    let back: Grid5000Spec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
    assert_eq!(back.total_machines(), 88);
}

#[test]
fn figure_results_serialise_and_render() {
    let mut figure = FigureResult::new("Round trip", "x", "y");
    figure.push(Series::new("a", vec![(1.0, 2.0), (3.0, 4.0)]));
    let json = serde_json::to_string(&figure).unwrap();
    let back: FigureResult = serde_json::from_str(&json).unwrap();
    assert_eq!(figure, back);
    assert!(back.to_ascii_table().contains("Round trip"));
    assert!(back.to_csv().starts_with("x,a"));
}

#[test]
fn simulation_outcomes_serialise() {
    let grid = grid5000_table3();
    let sim = Simulator::new(&grid, MessageSize::from_mib(1));
    let schedule = HeuristicKind::Ecef.schedule(&sim.problem(ClusterId(0)));
    let outcome = sim.execute_schedule(&schedule, Time::ZERO);
    let json = serde_json::to_string(&outcome).unwrap();
    let back: SimulationOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(outcome, back);
}
