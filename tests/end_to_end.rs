//! Cross-crate integration tests: topology → scheduling → prediction →
//! simulated execution, on both random Table 2 grids and the GRID'5000 snapshot.

use gridcast::core::heuristics::Heuristic;
use gridcast::core::{optimal_schedule, BroadcastProblem, HeuristicKind, MixedStrategy};
use gridcast::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_grid(clusters: usize, seed: u64) -> Grid {
    GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed))
}

#[test]
fn full_pipeline_on_random_grids() {
    for clusters in [2usize, 4, 8, 16] {
        let grid = random_grid(clusters, clusters as u64 * 7);
        let message = MessageSize::from_mib(1);
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
        let simulator = Simulator::new(&grid, message);
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            schedule
                .validate(&problem)
                .unwrap_or_else(|e| panic!("{kind} on {clusters} clusters: {e}"));
            assert!(schedule.makespan() >= problem.lower_bound());
            let outcome = simulator.execute_schedule(&schedule, Time::ZERO);
            assert!(outcome.completion.is_finite(), "{kind}");
            assert!(
                outcome.receive_times.iter().all(|t| t.is_finite()),
                "{kind} left machines unreached"
            );
        }
    }
}

#[test]
fn grid5000_pipeline_reproduces_the_paper_ordering() {
    let grid = grid5000_table3();
    let message = MessageSize::from_mib(4);
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
    let simulator = Simulator::new(&grid, message);

    let measure = |kind: HeuristicKind| {
        let schedule = kind.schedule(&problem);
        simulator.execute_schedule(&schedule, Time::ZERO).completion
    };

    let flat = measure(HeuristicKind::FlatTree);
    let ecef_family_worst = HeuristicKind::ecef_family()
        .into_iter()
        .map(measure)
        .max()
        .unwrap();
    let lam = simulator.run_default_mpi(ClusterId(0)).completion;

    // Paper, Figures 5/6: the ECEF family wins, the flat tree loses even against
    // the grid-unaware binomial.
    assert!(ecef_family_worst < lam);
    assert!(lam < flat);
}

#[test]
fn optimal_search_bounds_every_heuristic_end_to_end() {
    for seed in 0..5u64 {
        let grid = random_grid(5, 100 + seed);
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        let optimal = optimal_schedule(&problem).expect("5 clusters is within the search cap");
        for kind in HeuristicKind::all() {
            let heuristic = kind.schedule(&problem).makespan();
            assert!(
                optimal.makespan() <= heuristic + Time::from_micros(1.0),
                "seed {seed}: {kind} ({heuristic}) beat optimal ({})",
                optimal.makespan()
            );
        }
    }
}

#[test]
fn mixed_strategy_always_matches_one_component_end_to_end() {
    let strategy = MixedStrategy::default();
    for clusters in [4usize, 12, 30] {
        let grid = random_grid(clusters, 55 + clusters as u64);
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        let mixed = strategy.schedule(&problem).makespan();
        let selected = strategy.select(clusters).schedule(&problem).makespan();
        assert_eq!(mixed, selected);
    }
}

#[test]
fn rotating_the_root_keeps_schedules_valid_and_finite() {
    // The paper notes that the flat tree degrades when applications rotate the
    // broadcast root; whatever the root, our schedules must stay valid and the
    // grid-aware heuristics must stay ahead of the flat tree on average.
    let grid = grid5000_table3();
    let message = MessageSize::from_mib(1);
    let mut flat_total = Time::ZERO;
    let mut aware_total = Time::ZERO;
    for root in grid.cluster_ids() {
        let problem = BroadcastProblem::from_grid(&grid, root, message);
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            assert!(schedule.validate(&problem).is_ok(), "{kind} root {root}");
        }
        flat_total += HeuristicKind::FlatTree.schedule(&problem).makespan();
        aware_total += HeuristicKind::EcefLaMax.schedule(&problem).makespan();
    }
    assert!(aware_total < flat_total);
}

#[test]
fn facade_prelude_supports_the_documented_workflow() {
    // Mirrors the README quickstart; guards the public API surface.
    let grid = grid5000_table3();
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
    let schedule = HeuristicKind::EcefLaMax.schedule(&problem);
    assert!(schedule.makespan() > Time::ZERO);
    let simulator = Simulator::new(&grid, MessageSize::from_mib(1));
    let outcome: SimulationOutcome = simulator.execute_schedule(&schedule, Time::ZERO);
    assert!(outcome.completion >= schedule.makespan() * 0.5);
}
