//! Property-based tests for the personalised patterns and the engine's
//! per-edge payload path:
//!
//! * the costed engine path with uniform payloads is **byte-identical** to the
//!   plain broadcast path (the fast path really is the degenerate case),
//! * infinite sentinel edges (the scatter embedding) mix safely with every
//!   selection policy — no NaN score ever reaches the k-best rows (the
//!   engine's debug assertions are armed in this profile),
//! * relay-capable scatter schedules are exact and bracketed by brute force on
//!   small instances, and
//! * the all-to-all schedule never beats the corrected analytic lower bound.

use gridcast::core::patterns::{alltoall_estimate, alltoall_schedule};
use gridcast::core::{
    BroadcastProblem, EdgeCosts, HeuristicKind, RelayOrdering, RelayScatterProblem,
    ScatterOrdering, ScatterProblem, ScheduleEngine,
};
use gridcast::plogp::{MessageSize, Time};
use gridcast::topology::{ClusterId, GridGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `schedule_costed` with `EdgeCosts::uniform` reproduces the plain path
    /// **bit for bit** on random Table-2 grids up to 128 clusters, for every
    /// heuristic — same events, same float bit patterns, same completion
    /// times. This is the parity guarantee that lets the broadcast fast path
    /// share one round loop with the payload-priced patterns.
    #[test]
    fn uniform_payload_engine_path_is_byte_identical(
        clusters in 2usize..=128,
        seed in any::<u64>(),
        root_idx in 0usize..128,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1));
        let costs = EdgeCosts::uniform(&problem);
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let plain = engine.schedule(&problem, kind);
            let costed = engine.schedule_costed(&problem, &costs, kind);
            prop_assert_eq!(plain.events.len(), costed.events.len(), "{}", kind);
            for (a, b) in plain.events.iter().zip(&costed.events) {
                prop_assert!(
                    a.sender == b.sender
                        && a.receiver == b.receiver
                        && a.start.as_secs().to_bits() == b.start.as_secs().to_bits()
                        && a.arrival.as_secs().to_bits() == b.arrival.as_secs().to_bits(),
                    "{} diverges on {} clusters", kind, clusters
                );
            }
            let plain_spans: Vec<u64> =
                plain.cluster_completion.iter().map(|t| t.as_secs().to_bits()).collect();
            let costed_spans: Vec<u64> =
                costed.cluster_completion.iter().map(|t| t.as_secs().to_bits()).collect();
            prop_assert_eq!(plain_spans, costed_spans, "{} completions diverge", kind);
        }
    }

    /// Problems with infinite sentinel edges — the scatter embedding makes
    /// every non-root link infinitely expensive — run through **every**
    /// selection policy without producing a NaN score (the engine's debug
    /// assertions would abort this test) and still yield valid, finite
    /// schedules: only the finite root edges are ever committed.
    #[test]
    fn infinite_sentinel_edges_mix_safely_with_every_policy(
        clusters in 2usize..=24,
        seed in any::<u64>(),
        root_idx in 0usize..24,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let scatter = ScatterProblem::from_grid(&grid, root, MessageSize::from_kib(64));
        let embedded = scatter.as_broadcast_problem();
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let schedule = engine.schedule(&embedded, kind);
            prop_assert!(schedule.validate(&embedded).is_ok(), "{}", kind);
            prop_assert!(schedule.makespan().is_finite(), "{}", kind);
            for event in &schedule.events {
                prop_assert_eq!(event.sender, root, "{} relayed an infinite edge", kind);
            }
        }
        // The scatter orderings themselves stay sane on the same embedding.
        for ordering in [
            ScatterOrdering::ListOrder,
            ScatterOrdering::LongestTailFirst,
            ScatterOrdering::ShortestTailFirst,
        ] {
            prop_assert!(ordering.makespan(&scatter).is_finite());
        }
    }

    /// Relay-capable scatter on ≤5-cluster instances, checked against full
    /// brute-force enumeration of every relay tree and send order: the greedy
    /// schedules never beat the enumerated optimum (they are exact timings of
    /// real trees), the optimum never loses to the best direct-only ordering
    /// (stars are a subset of trees), and the direct greedy never beats the
    /// direct brute force.
    #[test]
    fn relay_scatter_is_bracketed_by_brute_force(
        clusters in 2usize..=5,
        seed in any::<u64>(),
        root_idx in 0usize..5,
        kib in 1u64..=512,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = RelayScatterProblem::from_grid(&grid, root, MessageSize::from_kib(kib));
        let optimal = problem.optimal_makespan();
        let best_direct = problem.best_direct_makespan();
        let eps = Time::from_micros(1.0);
        prop_assert!(optimal <= best_direct + eps,
            "relay optimum {} worse than direct optimum {}", optimal, best_direct);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let makespan = problem.makespan(ordering);
            prop_assert!(makespan.is_finite(), "{:?}", ordering);
            prop_assert!(makespan + eps >= optimal,
                "{:?} ({}) beat the brute-force optimum ({})", ordering, makespan, optimal);
        }
        prop_assert!(problem.makespan(RelayOrdering::Direct) + eps >= best_direct);
    }

    /// The engine-scheduled all-to-all is executable, covers every ordered
    /// cluster pair, and never beats the corrected interface-time lower
    /// bound.
    #[test]
    fn alltoall_schedule_respects_the_lower_bound(
        clusters in 2usize..=10,
        seed in any::<u64>(),
        kib in 1u64..=64,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let per_pair = MessageSize::from_kib(kib);
        let schedule = alltoall_schedule(&grid, per_pair);
        let estimate = alltoall_estimate(&grid, per_pair);
        prop_assert_eq!(schedule.exchange.transfers.len(), clusters * (clusters - 1));
        prop_assert!(schedule.makespan().is_finite());
        prop_assert!(schedule.makespan() + Time::from_micros(1.0) >= estimate,
            "schedule {} beat the lower bound {}", schedule.makespan(), estimate);
    }
}
