//! Property-based tests for the personalised patterns and the engine's
//! per-edge payload path — the **differential conformance suite**:
//!
//! * the costed engine path with uniform payloads is **byte-identical** to the
//!   plain broadcast path (the fast path really is the degenerate case),
//! * infinite sentinel edges (the scatter embedding) mix safely with every
//!   selection policy — no NaN score ever reaches the k-best rows (the
//!   engine's debug assertions are armed in this profile),
//! * relay-capable scatter schedules are exact and bracketed by brute force on
//!   small instances,
//! * the all-to-all and allgather schedules never beat their corrected
//!   analytic lower bounds,
//! * **duality**: the relay-capable gather makespan equals the time-reversed
//!   scatter's (scheduled on the transposed grid) bit for bit, for every
//!   policy, and gather brute force (forward-timed, no mirror involved)
//!   brackets the greedy on ≤5-cluster instances,
//! * **exchange-scheduler parity**: the lazy-invalidation heap behind
//!   `schedule_transfers` is byte-identical to the retained O(T²) oracle on
//!   random transfer sets with mixed payloads and release times, and
//! * **simulator conformance**: `execute_sized_plan` on gather/allgather
//!   plans reproduces the engine-predicted makespan exactly on grids with
//!   pair-symmetric latencies (GRID'5000 included) and within the documented
//!   25% gap-model tolerance on adversarial asymmetric ones — never below
//!   the engine's figure. Both executors are now thin lowerings of the
//!   **unified discrete-event core**, so these pins hold the one event loop
//!   to the legacy-executor contract, and
//! * **sink parity**: the streaming [`TraceSink`](gridcast::simulator::TraceSink)
//!   and the retained-vec sink observe event-identical sequences in
//!   non-decreasing time order, with outcomes bit-identical whichever sink
//!   watches the run.

use gridcast::core::patterns::{
    allgather_estimate, allgather_schedule, alltoall_estimate, alltoall_schedule,
};
use gridcast::core::{
    BroadcastProblem, EdgeCosts, HeuristicKind, RelayGatherProblem, RelayOrdering,
    RelayScatterProblem, ScatterOrdering, ScatterProblem, ScheduleEngine, Transfer, TransferSet,
};
use gridcast::plogp::{MessageSize, PLogP, Time};
use gridcast::simulator::{
    execute_plan, execute_plan_with_sink, execute_sized_plan, execute_sized_plan_with_sink,
    CountingSink, NodeNetwork, SendPlan, SizedSendPlan, StreamingSink, TraceEvent,
};
use gridcast::topology::{grid5000_table3, Cluster, ClusterId, Grid, GridGenerator};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `schedule_costed` with `EdgeCosts::uniform` reproduces the plain path
    /// **bit for bit** on random Table-2 grids up to 128 clusters, for every
    /// heuristic — same events, same float bit patterns, same completion
    /// times. This is the parity guarantee that lets the broadcast fast path
    /// share one round loop with the payload-priced patterns.
    #[test]
    fn uniform_payload_engine_path_is_byte_identical(
        clusters in 2usize..=128,
        seed in any::<u64>(),
        root_idx in 0usize..128,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = BroadcastProblem::from_grid(&grid, root, MessageSize::from_mib(1));
        let costs = EdgeCosts::uniform(&problem);
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let plain = engine.schedule(&problem, kind);
            let costed = engine.schedule_costed(&problem, &costs, kind);
            prop_assert_eq!(plain.events.len(), costed.events.len(), "{}", kind);
            for (a, b) in plain.events.iter().zip(&costed.events) {
                prop_assert!(
                    a.sender == b.sender
                        && a.receiver == b.receiver
                        && a.start.as_secs().to_bits() == b.start.as_secs().to_bits()
                        && a.arrival.as_secs().to_bits() == b.arrival.as_secs().to_bits(),
                    "{} diverges on {} clusters", kind, clusters
                );
            }
            let plain_spans: Vec<u64> =
                plain.cluster_completion.iter().map(|t| t.as_secs().to_bits()).collect();
            let costed_spans: Vec<u64> =
                costed.cluster_completion.iter().map(|t| t.as_secs().to_bits()).collect();
            prop_assert_eq!(plain_spans, costed_spans, "{} completions diverge", kind);
        }
    }

    /// Problems with infinite sentinel edges — the scatter embedding makes
    /// every non-root link infinitely expensive — run through **every**
    /// selection policy without producing a NaN score (the engine's debug
    /// assertions would abort this test) and still yield valid, finite
    /// schedules: only the finite root edges are ever committed.
    #[test]
    fn infinite_sentinel_edges_mix_safely_with_every_policy(
        clusters in 2usize..=24,
        seed in any::<u64>(),
        root_idx in 0usize..24,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let scatter = ScatterProblem::from_grid(&grid, root, MessageSize::from_kib(64));
        let embedded = scatter.as_broadcast_problem();
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let schedule = engine.schedule(&embedded, kind);
            prop_assert!(schedule.validate(&embedded).is_ok(), "{}", kind);
            prop_assert!(schedule.makespan().is_finite(), "{}", kind);
            for event in &schedule.events {
                prop_assert_eq!(event.sender, root, "{} relayed an infinite edge", kind);
            }
        }
        // The scatter orderings themselves stay sane on the same embedding.
        for ordering in [
            ScatterOrdering::ListOrder,
            ScatterOrdering::LongestTailFirst,
            ScatterOrdering::ShortestTailFirst,
        ] {
            prop_assert!(ordering.makespan(&scatter).is_finite());
        }
    }

    /// Relay-capable scatter on ≤5-cluster instances, checked against full
    /// brute-force enumeration of every relay tree and send order: the greedy
    /// schedules never beat the enumerated optimum (they are exact timings of
    /// real trees), the optimum never loses to the best direct-only ordering
    /// (stars are a subset of trees), and the direct greedy never beats the
    /// direct brute force.
    #[test]
    fn relay_scatter_is_bracketed_by_brute_force(
        clusters in 2usize..=5,
        seed in any::<u64>(),
        root_idx in 0usize..5,
        kib in 1u64..=512,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = RelayScatterProblem::from_grid(&grid, root, MessageSize::from_kib(kib));
        let optimal = problem.optimal_makespan();
        let best_direct = problem.best_direct_makespan();
        let eps = Time::from_micros(1.0);
        prop_assert!(optimal <= best_direct + eps,
            "relay optimum {} worse than direct optimum {}", optimal, best_direct);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let makespan = problem.makespan(ordering);
            prop_assert!(makespan.is_finite(), "{:?}", ordering);
            prop_assert!(makespan + eps >= optimal,
                "{:?} ({}) beat the brute-force optimum ({})", ordering, makespan, optimal);
        }
        prop_assert!(problem.makespan(RelayOrdering::Direct) + eps >= best_direct);
    }

    /// The engine-scheduled all-to-all is executable, covers every ordered
    /// cluster pair, and never beats the corrected interface-time lower
    /// bound.
    #[test]
    fn alltoall_schedule_respects_the_lower_bound(
        clusters in 2usize..=10,
        seed in any::<u64>(),
        kib in 1u64..=64,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let per_pair = MessageSize::from_kib(kib);
        let schedule = alltoall_schedule(&grid, per_pair);
        let estimate = alltoall_estimate(&grid, per_pair);
        prop_assert_eq!(schedule.exchange.transfers.len(), clusters * (clusters - 1));
        prop_assert!(schedule.makespan().is_finite());
        prop_assert!(schedule.makespan() + Time::from_micros(1.0) >= estimate,
            "schedule {} beat the lower bound {}", schedule.makespan(), estimate);
    }

    /// The engine-scheduled allgather covers every ordered cluster pair and
    /// never beats its corrected lower bound (send *and* receive interface
    /// time, release-gated, one terminal latency).
    #[test]
    fn allgather_schedule_respects_the_lower_bound(
        clusters in 2usize..=10,
        seed in any::<u64>(),
        kib in 1u64..=64,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let per_node = MessageSize::from_kib(kib);
        let schedule = allgather_schedule(&grid, per_node);
        let estimate = allgather_estimate(&grid, per_node);
        prop_assert_eq!(schedule.exchange.transfers.len(), clusters * (clusters - 1));
        prop_assert!(schedule.makespan().is_finite());
        prop_assert!(schedule.makespan() + Time::from_micros(1.0) >= estimate,
            "schedule {} beat the lower bound {}", schedule.makespan(), estimate);
    }

    /// **Duality**: for every grid up to 128 clusters and every relay policy,
    /// the relay-capable gather makespan equals the time-reversed scatter's —
    /// a `RelayScatterProblem` built independently on the transposed grid —
    /// **bit for bit**.
    #[test]
    fn gather_is_the_time_reversed_scatter_dual(
        clusters in 2usize..=128,
        seed in any::<u64>(),
        root_idx in 0usize..128,
        kib in 1u64..=512,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let per_node = MessageSize::from_kib(kib);
        let gather = RelayGatherProblem::from_grid(&grid, root, per_node);
        let reversed = RelayScatterProblem::from_grid(&grid.transposed(), root, per_node);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let g = gather.makespan(ordering);
            let s = reversed.makespan(ordering);
            prop_assert!(g.is_finite());
            prop_assert_eq!(
                g.as_secs().to_bits(), s.as_secs().to_bits(),
                "{:?} on {} clusters: gather {} vs reversed scatter {}",
                ordering, clusters, g, s
            );
        }
    }

    /// Gather brute force on ≤5-cluster instances: enumerating **all** gather
    /// trees with the independent forward (ASAP) timing agrees with the
    /// mirrored scatter's enumeration and brackets every greedy policy —
    /// the gather twin of the PR 3 scatter bracket.
    #[test]
    fn gather_brute_force_brackets_the_greedy(
        clusters in 2usize..=5,
        seed in any::<u64>(),
        root_idx in 0usize..5,
        kib in 1u64..=512,
    ) {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let root = ClusterId(root_idx % clusters);
        let problem = RelayGatherProblem::from_grid(&grid, root, MessageSize::from_kib(kib));
        let optimal = problem.optimal_makespan();
        let forward_optimal = problem.optimal_forward_makespan();
        // Forward timing and reflection accumulate floats differently; the
        // values are mathematically equal.
        let eps = Time::from_micros(10.0).max(optimal * 1e-9);
        prop_assert!(optimal.approx_eq(forward_optimal, eps),
            "mirror optimum {} vs forward optimum {}", optimal, forward_optimal);
        let best_direct = problem.best_direct_makespan();
        prop_assert!(optimal <= best_direct + eps);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let makespan = problem.makespan(ordering);
            prop_assert!(makespan.is_finite(), "{:?}", ordering);
            prop_assert!(makespan + eps >= optimal,
                "{:?} ({}) beat the gather brute-force optimum ({})", ordering, makespan, optimal);
        }
        prop_assert!(problem.makespan(RelayOrdering::Direct) + eps >= best_direct);
    }

    /// **Sink parity on the unified core**: for random grids and both
    /// lowerings — the broadcast `SendPlan` and the personalised
    /// `SizedSendPlan` — the retained-vec sink and the streaming sink observe
    /// **event-identical sequences** in non-decreasing time order, the
    /// counting sink agrees on the totals, and the outcome is bit-identical
    /// whichever sink (including the legacy `Option<&mut Vec<_>>` wrapper)
    /// watches the run.
    #[test]
    fn trace_sinks_observe_event_identical_sequences(
        clusters in 2usize..=16,
        seed in any::<u64>(),
        root_idx in 0usize..16,
        kib in 1u64..=256,
    ) {
        let grid = GridGenerator::table2()
            .cluster_size(3)
            .generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        let network = NodeNetwork::new(&grid);
        let root = ClusterId(root_idx % clusters);
        let m = MessageSize::from_kib(kib * 4);

        // Broadcast lowering: the grid-unaware binomial baseline (crosses
        // cluster boundaries, so wide-area channels and retries are hit).
        let plan = SendPlan::binomial_over_all_nodes(&grid, root);
        let mut retained: Vec<TraceEvent> = Vec::new();
        let legacy = execute_plan(&network, &plan, m, Time::ZERO, Some(&mut retained));
        let mut streaming = StreamingSink::new(Vec::new());
        let streamed = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut streaming);
        let mut counting = CountingSink::default();
        let counted = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut counting);
        prop_assert_eq!(&legacy, &streamed);
        prop_assert_eq!(&legacy, &counted);
        let receive_bits: Vec<u64> =
            legacy.receive_times.iter().map(|t| t.as_secs().to_bits()).collect();
        let stream_bits: Vec<u64> =
            streamed.receive_times.iter().map(|t| t.as_secs().to_bits()).collect();
        prop_assert_eq!(receive_bits, stream_bits);
        prop_assert!(retained.windows(2).all(|w| w[0].time <= w[1].time),
            "trace is not in non-decreasing time order");
        let text = String::from_utf8(streaming.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let expected: Vec<String> = retained.iter().map(|e| e.to_string()).collect();
        prop_assert_eq!(lines.len(), expected.len());
        for (line, event) in lines.iter().zip(&expected) {
            prop_assert_eq!(*line, event.as_str());
        }
        prop_assert_eq!(counting.total(), retained.len());

        // Personalised lowering: a gather schedule with its release gates.
        let per_node = MessageSize::from_kib(kib);
        let problem = RelayGatherProblem::from_grid(&grid, root, per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let sized = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
        let mut sized_retained: Vec<TraceEvent> = Vec::new();
        let a = execute_sized_plan(&network, &sized, Time::ZERO, Some(&mut sized_retained));
        let mut sized_streaming = StreamingSink::new(Vec::new());
        let b = execute_sized_plan_with_sink(&network, &sized, Time::ZERO, &mut sized_streaming);
        prop_assert_eq!(&a, &b);
        prop_assert!(sized_retained.windows(2).all(|w| w[0].time <= w[1].time));
        let text = String::from_utf8(sized_streaming.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let expected: Vec<String> = sized_retained.iter().map(|e| e.to_string()).collect();
        prop_assert_eq!(lines.len(), expected.len());
        for (line, event) in lines.iter().zip(&expected) {
            prop_assert_eq!(*line, event.as_str());
        }
    }

    /// **Exchange-scheduler parity**: the lazy-invalidation heap behind
    /// `schedule_transfers` produces byte-identical schedules to the retained
    /// O(T²) oracle on random transfer sets — mixed payload sizes, up to 64
    /// clusters, duplicate pairs allowed, random release times included.
    #[test]
    fn exchange_heap_is_byte_identical_to_the_oracle(
        clusters in 2usize..=64,
        transfers in 1usize..=256,
        seed in any::<u64>(),
        release_sel in 0u8..=1,
    ) {
        let with_release = release_sel == 1;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut set = TransferSet::new(clusters);
        for _ in 0..transfers {
            let from = rng.gen_range_u64(0, clusters as u64) as usize;
            let mut to = rng.gen_range_u64(0, clusters as u64 - 1) as usize;
            if to >= from {
                to += 1;
            }
            set.push(Transfer {
                from: ClusterId(from),
                to: ClusterId(to),
                payload: MessageSize::from_kib(1 + rng.gen_range_u64(0, 512)),
                gap: Time::from_millis(0.01 + 50.0 * rng.gen_f64()),
                latency: Time::from_millis(0.01 + 100.0 * rng.gen_f64()),
            });
        }
        let release: Vec<Time> = (0..clusters)
            .map(|_| if with_release {
                Time::from_millis(20.0 * rng.gen_f64())
            } else {
                Time::ZERO
            })
            .collect();
        let mut engine = ScheduleEngine::new();
        let fast = engine.schedule_transfers_from(&set, &release);
        let oracle = engine.schedule_transfers_quadratic_from(&set, &release);
        prop_assert_eq!(fast.transfers.len(), oracle.transfers.len());
        for (a, b) in fast.transfers.iter().zip(&oracle.transfers) {
            prop_assert!(
                a.from == b.from
                    && a.to == b.to
                    && a.payload == b.payload
                    && a.start.as_secs().to_bits() == b.start.as_secs().to_bits()
                    && a.arrival.as_secs().to_bits() == b.arrival.as_secs().to_bits(),
                "heap and oracle diverge on {} clusters / {} transfers", clusters, transfers
            );
        }
        let fast_free: Vec<u64> = fast.interface_free.iter().map(|t| t.as_secs().to_bits()).collect();
        let oracle_free: Vec<u64> = oracle.interface_free.iter().map(|t| t.as_secs().to_bits()).collect();
        prop_assert_eq!(fast_free, oracle_free);
        prop_assert_eq!(fast.last_arrival, oracle.last_arrival);
    }
}

/// A grid of `n` singleton clusters with identical modelled links everywhere —
/// the "uniform grid" of the conformance contract, where the simulator must
/// reproduce the engine exactly.
fn uniform_singleton_grid(n: usize) -> Grid {
    let lan = PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6);
    let wan = PLogP::affine(Time::from_millis(5.0), Time::from_millis(8.0), 100e6);
    let mut builder = Grid::builder();
    for i in 0..n {
        builder = builder.cluster(Cluster::with_plogp(
            ClusterId(i),
            format!("c{i}"),
            1,
            lan.clone(),
        ));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            builder = builder.link_symmetric(ClusterId(i), ClusterId(j), wan.clone());
        }
    }
    builder.build().unwrap()
}

/// An adversarial grid: modelled clusters of mixed sizes with fully
/// asymmetric directed links (different per-message cost, bandwidth *and*
/// latency in each direction) — the instance class where the reflected gather
/// windows shift by latency differences and the simulator may lag the engine
/// figure (never beat it).
fn asymmetric_grid(n: usize, seed: u64) -> Grid {
    let lan = PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = Grid::builder();
    for i in 0..n {
        builder = builder.cluster(Cluster::with_plogp(
            ClusterId(i),
            format!("c{i}"),
            1 + (i as u32 % 4) * 3,
            lan.clone(),
        ));
    }
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let link = PLogP::affine(
                Time::from_millis(1.0 + 60.0 * rng.gen_f64()),
                Time::from_millis(2.0 + 40.0 * rng.gen_f64()),
                30e6 + 200e6 * rng.gen_f64(),
            );
            builder = builder.link_directed(ClusterId(i), ClusterId(j), link);
        }
    }
    builder.build().unwrap()
}

/// Simulator conformance, exact half: on **uniform grids** (singleton
/// clusters, identical modelled links) `execute_sized_plan` reproduces the
/// engine-predicted gather and allgather makespans to float tolerance — the
/// reflected receive windows stay feasible, there are no local phases to
/// approximate, and the staged executor's both-endpoint occupancy is the
/// transfer scheduler's.
#[test]
fn simulator_reproduces_engine_gather_and_allgather_makespans_exactly_on_uniform_grids() {
    let eps = Time::from_micros(10.0);
    for (name, grid) in [
        ("uniform-3", uniform_singleton_grid(3)),
        ("uniform-6", uniform_singleton_grid(6)),
        ("uniform-12", uniform_singleton_grid(12)),
    ] {
        let network = NodeNetwork::new(&grid);
        for &kib in &[16u64, 256] {
            let per_node = MessageSize::from_kib(kib);
            for ordering in [
                RelayOrdering::Direct,
                RelayOrdering::EarliestCompletion,
                RelayOrdering::EarliestLocalFinish,
            ] {
                let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
                let schedule = problem.schedule(ordering);
                let plan = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
                let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
                assert!(
                    outcome.completion.approx_eq(schedule.makespan(), eps),
                    "{name} gather {ordering:?} @ {kib} KiB: simulated {} vs engine {}",
                    outcome.completion,
                    schedule.makespan()
                );
            }
            let allgather = allgather_schedule(&grid, per_node);
            let plan = SizedSendPlan::from_allgather_schedule(&grid, &allgather, per_node);
            let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
            assert!(
                outcome.completion.approx_eq(allgather.makespan(), eps),
                "{name} allgather @ {kib} KiB: simulated {} vs engine {}",
                outcome.completion,
                allgather.makespan()
            );
        }
    }
}

/// Simulator conformance on GRID'5000: the wide-area latencies are symmetric
/// per pair, so the only approximation is the multi-node clusters' local
/// phases — the binomial realisation can lag the analytic formula when
/// latency dominates small chunks (deep subtrees ready late, idle gaps at the
/// local root). The simulated makespan stays within a few percent above the
/// engine figure (large blocks are exact — the gap term packs the tree) and
/// never beats it.
#[test]
fn simulator_conformance_on_grid5000_is_within_the_documented_tolerance() {
    let grid = grid5000_table3();
    let network = NodeNetwork::new(&grid);
    let eps = Time::from_micros(10.0);
    for &kib in &[16u64, 64, 256] {
        let per_node = MessageSize::from_kib(kib);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
            let schedule = problem.schedule(ordering);
            let plan = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
            let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
            let engine = schedule.makespan();
            assert!(
                outcome.completion + eps >= engine,
                "gather {ordering:?} @ {kib} KiB: simulation {} beat the engine {}",
                outcome.completion,
                engine
            );
            assert!(
                outcome.completion <= engine * 1.05,
                "gather {ordering:?} @ {kib} KiB: simulation {} exceeds 5% over {}",
                outcome.completion,
                engine
            );
        }
        let allgather = allgather_schedule(&grid, per_node);
        let plan = SizedSendPlan::from_allgather_schedule(&grid, &allgather, per_node);
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        assert!(outcome.completion + eps >= allgather.makespan());
        assert!(outcome.completion <= allgather.makespan() * 1.05);
    }
}

/// Simulator conformance, tolerance half: on adversarial fully-asymmetric
/// grids the reflected gather receive windows shift by per-direction latency
/// differences, so the executor may have to push receives later — the
/// simulated makespan stays within the documented **25% gap-model tolerance**
/// above the engine figure and never beats it (the engine's schedule is a
/// genuine lower bound for its own node-level realisation).
#[test]
fn simulator_conformance_is_bounded_on_asymmetric_grids() {
    let eps = Time::from_micros(10.0);
    for seed in 0..10u64 {
        for n in [3usize, 6, 10] {
            let grid = asymmetric_grid(n, seed * 131 + n as u64);
            let network = NodeNetwork::new(&grid);
            let per_node = MessageSize::from_kib(32);
            for ordering in [RelayOrdering::Direct, RelayOrdering::EarliestCompletion] {
                let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
                let schedule = problem.schedule(ordering);
                let plan = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
                let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
                let engine = schedule.makespan();
                assert!(
                    outcome.completion + eps >= engine,
                    "seed {seed} n {n} {ordering:?}: simulation {} beat the engine {}",
                    outcome.completion,
                    engine
                );
                assert!(
                    outcome.completion <= engine * 1.25,
                    "seed {seed} n {n} {ordering:?}: simulation {} exceeds the 25% tolerance over {}",
                    outcome.completion,
                    engine
                );
            }
            let allgather = allgather_schedule(&grid, per_node);
            let plan = SizedSendPlan::from_allgather_schedule(&grid, &allgather, per_node);
            let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
            assert!(outcome.completion + eps >= allgather.makespan());
            assert!(outcome.completion <= allgather.makespan() * 1.25);
        }
    }
}
